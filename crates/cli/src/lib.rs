//! Library behind the `grococa` command-line binary: argument parsing,
//! command execution and report rendering. Split from `main.rs` so the
//! whole surface is unit-testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod cells;
pub mod output;

use std::fmt;
use std::sync::Mutex;

use grococa_core::{ConfigError, Scheme, SimConfig, Simulation};
use grococa_journal::{Journal, JournalError};
use grococa_par::SuperviseOptions;

use args::{apply_sweep_value, ArgError, Cli, Command};
use cells::CellRecord;
use output::Row;

/// Everything that can go wrong executing a command line. The binary maps
/// the variants to distinct exit codes: 1 for usage mistakes, journal
/// refusals and aborted sweeps; 2 for semantically invalid
/// configurations. (Exit 3 — a sweep that *completed* with quarantined
/// cells — is not an error; see [`ExecOutcome::quarantined`].)
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The command line itself was malformed.
    Args(ArgError),
    /// The arguments parsed but describe an invalid simulation
    /// configuration (caught by [`grococa_core::SimConfig::validate`]
    /// before any simulation is built).
    Config(ConfigError),
    /// The result journal refused to open: unreadable header, fingerprint
    /// mismatch, or an I/O failure.
    Journal(JournalError),
    /// A sweep cell failed past its retry budget and `--keep-going` was
    /// not given; the message names the first failing cell.
    Sweep(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Config(e) => write!(f, "{e}"),
            CliError::Journal(e) => write!(f, "{e}"),
            CliError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<JournalError> for CliError {
    fn from(e: JournalError) -> Self {
        CliError::Journal(e)
    }
}

/// The result of executing a command line: the rendered output plus how
/// many sweep cells were quarantined as `FAILED` rows (always zero
/// outside `sweep --keep-going`). The binary maps a non-zero count to
/// exit code 3 — "completed with quarantined cells".
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The rendered table or CSV.
    pub rendered: String,
    /// Sweep cells that failed past their retry budget.
    pub quarantined: usize,
}

/// The environment variable of the chaos test hook: a comma-separated
/// list of sweep cell indices that panic instead of simulating. Exists so
/// the quarantine/`FAILED`/exit-3 path is drivable end-to-end from the
/// integration tests and CI; never set it in real use.
pub const CHAOS_ENV: &str = "GROCOCA_CHAOS_FAIL_CELLS";

fn chaos_cells() -> Vec<usize> {
    std::env::var(CHAOS_ENV)
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default()
}

/// Executes a parsed command line, returning the rendered output (the
/// binary prints it; tests inspect it). Shorthand for
/// [`execute_outcome`] when the quarantine count is not needed.
///
/// # Errors
///
/// See [`execute_outcome`].
pub fn execute(cli: &Cli) -> Result<String, CliError> {
    execute_outcome(cli).map(|out| out.rendered)
}

/// Executes a parsed command line, returning the rendered output and the
/// number of quarantined sweep cells.
///
/// # Errors
///
/// Returns [`CliError::Args`] if a sweep value is invalid for its
/// parameter, [`CliError::Config`] if any resulting configuration fails
/// validation — every config is validated before a simulation is
/// constructed, so a bad cell in a sweep fails fast instead of panicking
/// mid-grid — [`CliError::Journal`] if the result journal refuses to
/// open, and [`CliError::Sweep`] if a cell fails without `--keep-going`.
pub fn execute_outcome(cli: &Cli) -> Result<ExecOutcome, CliError> {
    let render = |rows: &[Row]| {
        if cli.csv {
            output::to_csv(rows)
        } else {
            output::to_table(rows)
        }
    };
    let done = |rendered: String| ExecOutcome {
        rendered,
        quarantined: 0,
    };
    match &cli.command {
        Command::Help => Ok(done(args::USAGE.to_string())),
        Command::Run(cfg) => {
            cfg.validate()?;
            let report = Simulation::new((**cfg).clone()).run().report;
            Ok(done(render(&[Row::ok(cfg.scheme, None, report)])))
        }
        Command::Compare(cfg) => {
            cfg.validate()?;
            let rows: Vec<Row> = [Scheme::Conventional, Scheme::Coca, Scheme::GroCoca]
                .into_iter()
                .map(|scheme| {
                    let mut c = (**cfg).clone();
                    c.scheme = scheme;
                    Row::ok(scheme, None, Simulation::new(c).run().report)
                })
                .collect();
            Ok(done(render(&rows)))
        }
        Command::Sweep {
            base,
            param,
            values,
            journal,
            resume,
            keep_going,
        } => {
            // Validate the whole grid up front: a bad cell aborts before
            // any simulation time is spent.
            let mut cells = Vec::new();
            for &x in values {
                for scheme in [Scheme::Conventional, Scheme::Coca, Scheme::GroCoca] {
                    let mut c = (**base).clone();
                    c.scheme = scheme;
                    apply_sweep_value(&mut c, param, x)?;
                    c.validate()?;
                    cells.push((x, scheme, c));
                }
            }
            let rows = run_sweep(
                &cells,
                SweepDurability {
                    fingerprint: cells::sweep_fingerprint(base, param, values, cells.len()),
                    journal: journal.as_deref(),
                    resume: *resume,
                    keep_going: *keep_going,
                },
            )?;
            let quarantined = rows
                .iter()
                .filter(|r| matches!(r.outcome, output::RowOutcome::Failed))
                .count();
            Ok(ExecOutcome {
                rendered: render(&rows),
                quarantined,
            })
        }
    }
}

/// Durability settings threaded into [`run_sweep`].
struct SweepDurability<'a> {
    fingerprint: grococa_journal::Fingerprint,
    journal: Option<&'a std::path::Path>,
    resume: bool,
    keep_going: bool,
}

/// Runs a validated sweep grid on the `GROCOCA_JOBS`-wide supervised
/// pool, journaling each completed cell when a journal is configured.
///
/// Cell results are collected **by grid index**, so the rendered rows are
/// byte-identical to the old serial path for any worker count — and,
/// because every cell is deterministic, a killed-and-resumed sweep
/// renders byte-identical output to an uninterrupted one.
fn run_sweep(
    cells: &[(f64, Scheme, SimConfig)],
    durability: SweepDurability<'_>,
) -> Result<Vec<Row>, CliError> {
    let n = cells.len();
    let mut settled: Vec<Option<grococa_core::Report>> = vec![None; n];

    // Open the journal first: completed cells recorded by a previous
    // (killed) run are settled before any simulation time is spent.
    let journal = match durability.journal {
        None => None,
        Some(path) if durability.resume => {
            let recovered = Journal::open_or_create(path, &durability.fingerprint)?;
            if let Some(warning) = &recovered.warning {
                eprintln!("warning: {warning}");
            }
            for raw in &recovered.records {
                if let Some((idx, CellRecord::Ok(report))) = cells::decode(raw) {
                    if idx < n {
                        settled[idx] = Some(report);
                    }
                }
            }
            Some(Mutex::new(recovered.journal))
        }
        Some(path) => Some(Mutex::new(Journal::create(path, &durability.fingerprint)?)),
    };

    let chaos = chaos_cells();
    let pending: Vec<usize> = (0..n).filter(|&i| settled[i].is_none()).collect();
    let opts = SuperviseOptions::with_jobs(grococa_par::jobs_from_env());
    let results = grococa_par::run_supervised(&pending, &opts, |&cell| {
        assert!(
            !chaos.contains(&cell),
            "chaos hook: injected panic for sweep cell {cell}"
        );
        let report = Simulation::new(cells[cell].2.clone()).run().report;
        if let Some(journal) = &journal {
            // Write-ahead: the cell is durable before it counts as done.
            // An append failure costs durability, not correctness — the
            // in-memory result still renders.
            let appended = journal
                .lock()
                .expect("journal lock never poisons: appends don't panic")
                .append(&cells::encode_ok(cell, &report));
            if let Err(e) = appended {
                eprintln!("warning: journal append for cell {cell} failed: {e}");
            }
        }
        report
    });

    let mut failures = Vec::new();
    for (&cell, result) in pending.iter().zip(results) {
        match result {
            Ok(report) => settled[cell] = Some(report),
            Err(failure) => failures.push((cell, failure)),
        }
    }

    for (cell, failure) in &failures {
        let (x, scheme, _) = &cells[*cell];
        eprintln!(
            "warning: sweep cell {cell} ({} at x={x}) quarantined: {failure}",
            scheme.label()
        );
        if let Some(journal) = &journal {
            let record = cells::encode_failed(*cell, &failure.panic_text);
            if let Err(e) = journal
                .lock()
                .expect("journal lock never poisons: appends don't panic")
                .append(&record)
            {
                eprintln!("warning: journal append for cell {cell} failed: {e}");
            }
        }
    }

    if let Some((cell, failure)) = failures.first() {
        if !durability.keep_going {
            return Err(CliError::Sweep(format!(
                "sweep cell {cell} failed after {} attempt(s): {}{} \
                 (use --keep-going to quarantine failing cells and finish the grid)",
                failure.attempts,
                failure.panic_text,
                if failure.exceeded_deadline {
                    " (exceeded watchdog deadline)"
                } else {
                    ""
                }
            )));
        }
    }

    Ok(cells
        .iter()
        .enumerate()
        .map(|(i, (x, scheme, _))| match settled[i] {
            Some(report) => Row::ok(*scheme, Some(*x), report),
            None => Row::failed(*scheme, Some(*x)),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use args::parse_args;

    fn run(line: &str) -> String {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        execute(&parse_args(&argv).unwrap()).unwrap()
    }

    #[test]
    fn help_prints_usage() {
        assert!(run("help").contains("USAGE"));
    }

    #[test]
    fn run_produces_one_row() {
        let out = run("run --clients 10 --requests 15 --scheme cc");
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("CC"));
    }

    #[test]
    fn compare_produces_three_rows() {
        let out = run("compare --clients 10 --requests 15 --csv");
        assert_eq!(out.lines().count(), 4);
        for label in ["CC", "COCA", "GC"] {
            assert!(out.contains(label), "missing {label} in output");
        }
    }

    #[test]
    fn sweep_produces_values_times_schemes_rows() {
        let out = run("sweep --param theta --values 0.2,0.8 --clients 10 --requests 15 --csv");
        assert_eq!(out.lines().count(), 1 + 2 * 3);
        assert!(out.contains("COCA,0.2,"));
        assert!(out.contains("GC,0.8,"));
    }

    #[test]
    fn cli_runs_are_deterministic() {
        let a = run("run --clients 10 --requests 15 --seed 3 --csv");
        let b = run("run --clients 10 --requests 15 --seed 3 --csv");
        assert_eq!(a, b);
    }

    #[test]
    fn fault_profiles_run_end_to_end() {
        let out = run("run --clients 10 --requests 15 --faults lossy --csv");
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn invalid_configs_are_config_errors_not_panics() {
        let argv: Vec<String> = "run --clients 0"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = execute(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "got: {err:?}");
        assert!(err.to_string().contains("at least one client"));
    }

    #[test]
    fn invalid_sweep_cell_fails_before_running() {
        // p_disc = 1.5 parses as an argument but is semantically invalid.
        let argv: Vec<String> = "sweep --param p_disc --values 0.1,1.5 --clients 10 --requests 15"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = execute(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "got: {err:?}");
    }
}
