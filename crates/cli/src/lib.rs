//! Library behind the `grococa` command-line binary: argument parsing,
//! command execution and report rendering. Split from `main.rs` so the
//! whole surface is unit-testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod cells;
pub mod checkpoint;
pub mod drain;
pub mod output;
pub mod worker;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use grococa_core::{ConfigError, Scheme, SimConfig, Simulation};
use grococa_journal::{FaultScript, FaultyBackend, Journal, JournalError};
use grococa_par::{
    payload_text, run_attempts, warn_once, AttemptFailure, FailureKind, JobFailure, Slot,
    SuperviseOptions,
};

use args::{apply_sweep_value, ArgError, Cli, Command};
use cells::CellRecord;
use output::Row;

/// Everything that can go wrong executing a command line. The binary maps
/// the variants to distinct exit codes: 1 for usage mistakes, journal
/// refusals and aborted sweeps; 2 for semantically invalid
/// configurations. (Exit 3 — a sweep that *completed* with quarantined
/// cells — is not an error; see [`ExecOutcome::quarantined`].)
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// The command line itself was malformed.
    Args(ArgError),
    /// The arguments parsed but describe an invalid simulation
    /// configuration (caught by [`grococa_core::SimConfig::validate`]
    /// before any simulation is built).
    Config(ConfigError),
    /// The result journal refused to open: unreadable header, fingerprint
    /// mismatch, or an I/O failure.
    Journal(JournalError),
    /// A sweep cell failed past its retry budget and `--keep-going` was
    /// not given; the message names the first failing cell.
    Sweep(String),
    /// The simulation core reported an internal error (invariant
    /// breach) instead of completing the run.
    Sim(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Config(e) => write!(f, "{e}"),
            CliError::Journal(e) => write!(f, "{e}"),
            CliError::Sweep(e) => write!(f, "{e}"),
            CliError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<JournalError> for CliError {
    fn from(e: JournalError) -> Self {
        CliError::Journal(e)
    }
}

/// The result of executing a command line: the rendered output plus how
/// many sweep cells were quarantined as `FAILED` rows (always zero
/// outside `sweep --keep-going`). The binary maps a non-zero count to
/// exit code 3 — "completed with quarantined cells" — and a drained
/// sweep to exit code 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The rendered table or CSV. Empty for a drained sweep: a partial
    /// grid must never masquerade as results, and the resume renders the
    /// full byte-identical output instead.
    pub rendered: String,
    /// Sweep cells that failed past their retry budget.
    pub quarantined: usize,
    /// Quarantine reasons grouped by kind (e.g. `2 panic, 1 deadline`),
    /// for the end-of-sweep summary line. `None` when nothing failed.
    pub quarantine_summary: Option<String>,
    /// A drained sweep's stderr note ("journal flushed, N/M cells done,
    /// resume with ..."); `Some` exactly when the sweep drained.
    pub drained: Option<String>,
}

impl ExecOutcome {
    fn completed(rendered: String) -> ExecOutcome {
        ExecOutcome {
            rendered,
            quarantined: 0,
            quarantine_summary: None,
            drained: None,
        }
    }
}

/// The environment variable of the chaos test hook: a comma-separated
/// list of sweep cell indices that panic instead of simulating. Exists so
/// the quarantine/`FAILED`/exit-3 path is drivable end-to-end from the
/// integration tests and CI; never set it in real use.
pub const CHAOS_ENV: &str = "GROCOCA_CHAOS_FAIL_CELLS";

/// The environment variable of the journal chaos hook: a
/// [`grococa_journal::FaultScript`] spec (`<mode>:<op>[:persist]`, mode
/// one of `full|eio|short|sync`) injected between the journal and its
/// file, so the disk-fault degrade paths are drivable end-to-end from
/// integration tests and CI. Never set it in real use.
pub const CHAOS_JOURNAL_ENV: &str = "GROCOCA_CHAOS_JOURNAL";

pub(crate) fn chaos_cells() -> Vec<usize> {
    std::env::var(CHAOS_ENV)
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default()
}

/// Executes a parsed command line, returning the rendered output (the
/// binary prints it; tests inspect it). Shorthand for
/// [`execute_outcome`] when the quarantine count is not needed.
///
/// # Errors
///
/// See [`execute_outcome`].
pub fn execute(cli: &Cli) -> Result<String, CliError> {
    execute_outcome(cli).map(|out| out.rendered)
}

/// Executes a parsed command line, returning the rendered output and the
/// number of quarantined sweep cells.
///
/// # Errors
///
/// Returns [`CliError::Args`] if a sweep value is invalid for its
/// parameter, [`CliError::Config`] if any resulting configuration fails
/// validation — every config is validated before a simulation is
/// constructed, so a bad cell in a sweep fails fast instead of panicking
/// mid-grid — [`CliError::Journal`] if the result journal refuses to
/// open, and [`CliError::Sweep`] if a cell fails without `--keep-going`.
pub fn execute_outcome(cli: &Cli) -> Result<ExecOutcome, CliError> {
    let render = |rows: &[Row]| {
        if cli.csv {
            output::to_csv(rows)
        } else {
            output::to_table(rows)
        }
    };
    let done = ExecOutcome::completed;
    match &cli.command {
        Command::Help => Ok(done(args::USAGE.to_string())),
        Command::Run {
            cfg,
            checkpoint,
            checkpoint_every,
            resume_run,
        } => {
            cfg.validate()?;
            let report = run_single(
                (**cfg).clone(),
                checkpoint.as_deref(),
                *checkpoint_every,
                resume_run.as_deref(),
            )?;
            Ok(done(render(&[Row::ok(cfg.scheme, None, report)])))
        }
        Command::Compare(cfg) => {
            cfg.validate()?;
            let rows: Vec<Row> = [Scheme::Conventional, Scheme::Coca, Scheme::GroCoca]
                .into_iter()
                .map(|scheme| {
                    let mut c = (**cfg).clone();
                    c.scheme = scheme;
                    Row::ok(scheme, None, Simulation::new(c).run().report)
                })
                .collect();
            Ok(done(render(&rows)))
        }
        Command::Sweep {
            base,
            param,
            values,
            journal,
            resume,
            keep_going,
            isolate,
            cell_deadline,
            cell_mem_mb,
            checkpoint,
            checkpoint_every,
        } => {
            let cells = build_cells(base, param, values)?;
            let outcome = run_sweep(
                &cells,
                SweepSettings {
                    fingerprint: cells::sweep_fingerprint(base, param, values, cells.len()),
                    journal: journal.as_deref(),
                    resume: *resume,
                    keep_going: *keep_going,
                    isolate: *isolate,
                    isolation: worker::Isolation {
                        deadline: *cell_deadline,
                        mem_limit_bytes: cell_mem_mb.map(|mb| mb << 20),
                    },
                    checkpoint: checkpoint.as_deref().map(|dir| (dir, *checkpoint_every)),
                },
            )?;
            match outcome {
                SweepOutcome::Finished { rows, failures } => Ok(ExecOutcome {
                    rendered: render(&rows),
                    quarantined: failures.len(),
                    quarantine_summary: quarantine_summary(&failures),
                    drained: None,
                }),
                SweepOutcome::Drained { settled, total } => Ok(ExecOutcome {
                    rendered: String::new(),
                    quarantined: 0,
                    quarantine_summary: None,
                    drained: Some(format!(
                        "sweep drained by shutdown signal: {settled}/{total} cells done{}",
                        match journal {
                            Some(path) => format!(
                                "; journal flushed — resume with \
                                 `--journal {} --resume`",
                                path.display()
                            ),
                            None =>
                                "; no journal was configured, completed cells are lost".to_string(),
                        }
                    )),
                }),
            }
        }
    }
}

/// Runs one validated configuration, optionally checkpointing every
/// `every` events into `ckpt` and/or resuming from the newest good
/// checkpoint in `resume_from` (see [`checkpoint`] for the format and
/// the fallback ladder).
///
/// Resume semantics are total: a missing file, an empty journal or a
/// journal whose every checkpoint is corrupt all degrade to a fresh run
/// with a warning. Only a *fingerprint* mismatch — the file belongs to a
/// different configuration or binary — refuses, because silently
/// restarting a different run is worse than stopping.
fn run_single(
    cfg: SimConfig,
    ckpt: Option<&std::path::Path>,
    every: u64,
    resume_from: Option<&std::path::Path>,
) -> Result<grococa_core::Report, CliError> {
    let fp = checkpoint::fingerprint(&cfg);
    let mut journal: Option<Journal> = None;
    let mut next_seq = 0u64;
    let mut resumed: Option<grococa_core::ResumedSimulation> = None;

    if let Some(rp) = resume_from {
        if rp.exists() {
            let recovered = Journal::open_or_create(rp, &fp)?;
            if let Some(warning) = &recovered.warning {
                warn_once("checkpoint-truncated", warning);
            }
            let rec = checkpoint::reassemble(&recovered.records);
            next_seq = rec.next_seq;
            match checkpoint::latest_usable(&cfg, rp, &rec.snapshots) {
                Some((seq, r)) => {
                    eprintln!(
                        "note: resuming from checkpoint {seq} in {} \
                         ({} events already simulated)",
                        rp.display(),
                        r.events_fired(),
                    );
                    resumed = Some(r);
                }
                None => warn_once(
                    "checkpoint-none",
                    &format!("no usable checkpoint in {}; starting fresh", rp.display()),
                ),
            }
            // Same file for --resume-run and --checkpoint: keep appending
            // to the journal we just recovered.
            if ckpt == Some(rp) {
                journal = Some(recovered.journal);
            }
        } else {
            warn_once(
                "checkpoint-missing",
                &format!(
                    "--resume-run {}: no such file; starting fresh",
                    rp.display()
                ),
            );
        }
    }
    if journal.is_none() {
        if let Some(path) = ckpt {
            journal = Some(Journal::create(path, &fp)?);
            next_seq = 0;
        }
    }

    // Chaos seam: scripted disk faults between the checkpoint journal
    // and its file, exactly as for sweep result journals.
    if let (Some(j), Ok(spec)) = (journal.as_mut(), std::env::var(CHAOS_JOURNAL_ENV)) {
        let script = FaultScript::parse(&spec).map_err(|e| {
            CliError::Args(args::ArgError(format!("{CHAOS_JOURNAL_ENV}={spec:?}: {e}")))
        })?;
        j.wrap_backend(|inner| Box::new(FaultyBackend::new(inner, script)));
    }

    let mut writer = checkpoint::Writer::new(journal, next_seq);
    let every = if writer.active() { every } else { 0 };
    let mut sink = |bytes: &[u8]| {
        writer.append(bytes);
    };
    // `GROCOCA_TIMING=1` prints a throughput line to stderr (stdout
    // stays byte-identical, so timing never perturbs CSV comparisons).
    // This is how BENCH_checkpoint.json measures checkpoint overhead.
    let timing_from = std::env::var_os("GROCOCA_TIMING").map(|_| Instant::now());
    let result = match resumed {
        Some(r) => r.try_run_inspect_checkpointed(every, &mut sink),
        None => Simulation::new(cfg).try_run_inspect_checkpointed(every, &mut sink),
    };
    let (mut out, _sim) = result.map_err(|e| CliError::Sim(e.to_string()))?;
    if let Some(started) = timing_from {
        let elapsed = started.elapsed().as_secs_f64();
        out.record_wall_time(elapsed);
        eprintln!(
            "timing: {} events in {elapsed:.2}s ({:.0} events/sec)",
            out.events, out.events_per_sec
        );
    }
    Ok(out.report)
}

/// Builds and validates the full sweep grid up front: a bad cell aborts
/// before any simulation time is spent. Shared by the sweep driver and
/// the isolation worker (which must derive the *identical* grid from
/// the same argv).
pub(crate) fn build_cells(
    base: &SimConfig,
    param: &str,
    values: &[f64],
) -> Result<Vec<(f64, Scheme, SimConfig)>, CliError> {
    let mut cells = Vec::new();
    for &x in values {
        for scheme in [Scheme::Conventional, Scheme::Coca, Scheme::GroCoca] {
            let mut c = base.clone();
            c.scheme = scheme;
            apply_sweep_value(&mut c, param, x)?;
            c.validate()?;
            cells.push((x, scheme, c));
        }
    }
    Ok(cells)
}

/// Formats quarantine reasons by kind (`2 panic, 1 deadline`).
fn quarantine_summary(failures: &[(usize, JobFailure)]) -> Option<String> {
    if failures.is_empty() {
        return None;
    }
    let kinds = [
        FailureKind::Panic,
        FailureKind::Deadline,
        FailureKind::MemLimit,
        FailureKind::DrainKilled,
    ];
    let parts: Vec<String> = kinds
        .into_iter()
        .filter_map(|kind| {
            let count = failures.iter().filter(|(_, f)| f.kind == kind).count();
            (count > 0).then(|| format!("{count} {}", kind.label()))
        })
        .collect();
    Some(parts.join(", "))
}

/// Settings threaded into [`run_sweep`]: durability and enforcement.
struct SweepSettings<'a> {
    fingerprint: grococa_journal::Fingerprint,
    journal: Option<&'a std::path::Path>,
    resume: bool,
    keep_going: bool,
    isolate: bool,
    isolation: worker::Isolation,
    /// Per-cell checkpoint directory + cadence (`--checkpoint DIR`
    /// `--checkpoint-every N`; isolate mode only).
    checkpoint: Option<(&'a std::path::Path, u64)>,
}

/// How a sweep ended.
enum SweepOutcome {
    /// Every cell was attempted; rows are complete (quarantined cells
    /// render as FAILED under `--keep-going`).
    Finished {
        rows: Vec<Row>,
        failures: Vec<(usize, JobFailure)>,
    },
    /// A shutdown signal drained the sweep: in-flight cells finished
    /// and were journaled, unclaimed cells were never started. No rows
    /// are rendered — the resumed run renders the full output.
    Drained { settled: usize, total: usize },
}

/// A journal that can degrade mid-sweep: appends route through
/// [`SweepJournal::append`], which on a classified disk fault either
/// degrades to un-journaled execution (`--keep-going`) or records a
/// fatal error and asks the pool to stop claiming cells.
struct SweepJournal {
    journal: Mutex<Option<Journal>>,
    fatal: Mutex<Option<CliError>>,
    abort: AtomicBool,
    keep_going: bool,
}

impl SweepJournal {
    fn new(journal: Option<Journal>, keep_going: bool) -> SweepJournal {
        SweepJournal {
            journal: Mutex::new(journal),
            fatal: Mutex::new(None),
            abort: AtomicBool::new(false),
            keep_going,
        }
    }

    fn append(&self, payload: &[u8]) {
        let mut guard = self
            .journal
            .lock()
            .expect("journal lock never poisons: appends don't panic");
        let Some(journal) = guard.as_mut() else {
            return;
        };
        if let Err(e) = journal.append(payload) {
            // The append rolled back (or wedged): the on-disk prefix is
            // still clean either way. What happens next is policy.
            if self.keep_going {
                warn_once(
                    "journal-degrade",
                    &format!(
                        "{e}; continuing WITHOUT journaling — cells completed \
                         from here on will not be resumable"
                    ),
                );
            } else {
                *self.fatal.lock().unwrap_or_else(|p| p.into_inner()) =
                    Some(CliError::Journal(e.into()));
                self.abort.store(true, Ordering::SeqCst);
            }
            *guard = None;
        }
    }

    fn aborting(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    fn into_fatal(self) -> Option<CliError> {
        self.fatal.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// Runs a validated sweep grid on the `GROCOCA_JOBS`-wide supervised
/// pool, journaling each completed cell when a journal is configured.
///
/// Cell results are collected **by grid index**, so the rendered rows are
/// byte-identical to the old serial path for any worker count — and,
/// because every cell is deterministic, a killed, drained or resumed
/// sweep renders byte-identical output to an uninterrupted one.
///
/// With `--isolate`, cells run in re-exec'd child processes and the
/// deadline/memory limits are enforced by `kill()` (see [`worker`]);
/// otherwise cells run on threads with the deadline advisory.
fn run_sweep(
    cells: &[(f64, Scheme, SimConfig)],
    settings: SweepSettings<'_>,
) -> Result<SweepOutcome, CliError> {
    let n = cells.len();
    let mut settled: Vec<Option<grococa_core::Report>> = vec![None; n];

    // Open the journal first: completed cells recorded by a previous
    // (killed or drained) run are settled before any simulation time is
    // spent. A `Drained` trailer or `Failed` record just means "re-run
    // whatever is not recorded Ok".
    let journal = match settings.journal {
        None => None,
        Some(path) if settings.resume => {
            let recovered = Journal::open_or_create(path, &settings.fingerprint)?;
            if let Some(warning) = &recovered.warning {
                warn_once("journal-truncated", warning);
            }
            for raw in &recovered.records {
                if let Some((idx, CellRecord::Ok(report))) = cells::decode(raw) {
                    if idx < n {
                        settled[idx] = Some(report);
                    }
                }
            }
            Some(recovered.journal)
        }
        Some(path) => Some(Journal::create(path, &settings.fingerprint)?),
    };

    let pending: Vec<usize> = (0..n).filter(|&i| settled[i].is_none()).collect();

    // Preflight: refuse to start hours of work against a disk that
    // cannot hold the journal the sweep is counting on (degradable
    // under --keep-going, like any other append-path fault).
    let mut journal = journal;
    if let (Some(path), false) = (settings.journal, pending.is_empty()) {
        // Generous per-record estimate: payload (~150 bytes) + framing.
        let estimate = (pending.len() as u64 + 1) * 256;
        if let Err(e) = grococa_journal::preflight_space(path, estimate) {
            if settings.keep_going {
                warn_once(
                    "journal-degrade",
                    &format!(
                        "journal preflight failed ({e}); continuing WITHOUT \
                         journaling — completed cells will not be resumable"
                    ),
                );
                journal = None;
            } else {
                return Err(CliError::Journal(JournalError::Append(e)));
            }
        }
    }

    // Chaos seam: scripted disk faults between the journal and its file.
    if let (Some(journal), Ok(spec)) = (journal.as_mut(), std::env::var(CHAOS_JOURNAL_ENV)) {
        let script = FaultScript::parse(&spec)
            .map_err(|e| CliError::Sweep(format!("{CHAOS_JOURNAL_ENV}={spec:?}: {e}")))?;
        journal.wrap_backend(|inner| Box::new(FaultyBackend::new(inner, script)));
    }

    // Per-cell checkpointing is an optimisation: a directory that cannot
    // be created degrades with a warning, it never aborts the sweep.
    let mut cell_checkpoint = settings.checkpoint;
    if let Some((dir, _)) = cell_checkpoint {
        if let Err(e) = std::fs::create_dir_all(dir) {
            warn_once(
                "checkpoint-dir",
                &format!(
                    "cannot create checkpoint directory {} ({e}); \
                     cells will run without checkpointing",
                    dir.display()
                ),
            );
            cell_checkpoint = None;
        }
    }

    let journal = SweepJournal::new(journal, settings.keep_going);
    let chaos = chaos_cells();
    let mut opts = SuperviseOptions::with_jobs(grococa_par::jobs_from_env());
    opts.deadline = settings.isolation.deadline;
    let fingerprint_hash = settings.fingerprint.config_hash;
    let drain_check = || drain::DRAIN.drain_requested() || journal.aborting();

    let attempt = |&cell: &usize, _idx: usize| -> Result<grococa_core::Report, AttemptFailure> {
        let result = if settings.isolate {
            worker::attempt_isolated(cell, fingerprint_hash, &settings.isolation, cell_checkpoint)
        } else {
            let started = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| {
                assert!(
                    !chaos.contains(&cell),
                    "chaos hook: injected panic for sweep cell {cell}"
                );
                Simulation::new(cells[cell].2.clone()).run().report
            })) {
                Ok(report) => Ok(report),
                Err(payload) => {
                    let overran = opts.deadline.is_some_and(|d| started.elapsed() > d);
                    Err(AttemptFailure {
                        kind: if overran {
                            FailureKind::Deadline
                        } else {
                            FailureKind::Panic
                        },
                        message: payload_text(payload.as_ref()).to_string(),
                    })
                }
            }
        };
        if let Ok(report) = &result {
            // Write-ahead: the cell is durable before it counts as done.
            journal.append(&cells::encode_ok(cell, report));
            // The cell result is durable; its mid-run checkpoint file
            // has nothing left to protect.
            if let Some((dir, _)) = cell_checkpoint {
                std::fs::remove_file(worker::cell_checkpoint_path(dir, cell)).ok();
            }
        }
        result
    };

    let slots = run_attempts(&pending, &opts, Some(&drain_check), attempt);

    let mut failures: Vec<(usize, JobFailure)> = Vec::new();
    let mut skipped = 0usize;
    for (&cell, slot) in pending.iter().zip(slots) {
        match slot {
            Slot::Done(report) => settled[cell] = Some(report),
            Slot::Failed(failure) => failures.push((cell, failure)),
            Slot::Skipped => skipped += 1,
        }
    }

    for (cell, failure) in &failures {
        let (x, scheme, _) = &cells[*cell];
        eprintln!(
            "warning: sweep cell {cell} ({} at x={x}) quarantined: {failure}",
            scheme.label()
        );
        journal.append(&cells::encode_failed(
            *cell,
            failure.kind,
            failure.attempts,
            &failure.message,
        ));
    }

    // A journal fault without --keep-going aborted the pool: surface it
    // as the sweep's error (takes precedence over a concurrent drain —
    // the journal can no longer certify what was saved).
    let drained = drain::DRAIN.drain_requested() && skipped > 0;
    if drained {
        // Stamp the flushed journal so a later `--resume` knows this was
        // a clean drain, not a crash.
        journal.append(&cells::encode_drained());
    }
    if let Some(fatal) = journal.into_fatal() {
        return Err(fatal);
    }
    if drained {
        return Ok(SweepOutcome::Drained {
            settled: settled.iter().filter(|s| s.is_some()).count(),
            total: n,
        });
    }

    if let Some((cell, failure)) = failures.first() {
        if !settings.keep_going {
            return Err(CliError::Sweep(format!(
                "sweep {failure} \
                 (use --keep-going to quarantine failing cells and finish the grid; \
                 first failing cell: {cell})"
            )));
        }
    }

    let rows = cells
        .iter()
        .enumerate()
        .map(|(i, (x, scheme, _))| match settled[i] {
            Some(report) => Row::ok(*scheme, Some(*x), report),
            None => {
                let failure = failures.iter().find(|(cell, _)| *cell == i).map(|(_, f)| f);
                match failure {
                    Some(f) => Row::failed(*scheme, Some(*x), f.kind.label(), f.attempts),
                    // Unreachable in a finished sweep, but total anyway.
                    None => Row::failed(*scheme, Some(*x), "unknown", 0),
                }
            }
        })
        .collect();
    Ok(SweepOutcome::Finished { rows, failures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use args::parse_args;

    fn run(line: &str) -> String {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        execute(&parse_args(&argv).unwrap()).unwrap()
    }

    #[test]
    fn help_prints_usage() {
        assert!(run("help").contains("USAGE"));
    }

    #[test]
    fn run_produces_one_row() {
        let out = run("run --clients 10 --requests 15 --scheme cc");
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("CC"));
    }

    #[test]
    fn compare_produces_three_rows() {
        let out = run("compare --clients 10 --requests 15 --csv");
        assert_eq!(out.lines().count(), 4);
        for label in ["CC", "COCA", "GC"] {
            assert!(out.contains(label), "missing {label} in output");
        }
    }

    #[test]
    fn sweep_produces_values_times_schemes_rows() {
        let out = run("sweep --param theta --values 0.2,0.8 --clients 10 --requests 15 --csv");
        assert_eq!(out.lines().count(), 1 + 2 * 3);
        assert!(out.contains("COCA,0.2,"));
        assert!(out.contains("GC,0.8,"));
    }

    #[test]
    fn cli_runs_are_deterministic() {
        let a = run("run --clients 10 --requests 15 --seed 3 --csv");
        let b = run("run --clients 10 --requests 15 --seed 3 --csv");
        assert_eq!(a, b);
    }

    #[test]
    fn fault_profiles_run_end_to_end() {
        let out = run("run --clients 10 --requests 15 --faults lossy --csv");
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn invalid_configs_are_config_errors_not_panics() {
        let argv: Vec<String> = "run --clients 0"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = execute(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "got: {err:?}");
        assert!(err.to_string().contains("at least one client"));
    }

    #[test]
    fn invalid_sweep_cell_fails_before_running() {
        // p_disc = 1.5 parses as an argument but is semantically invalid.
        let argv: Vec<String> = "sweep --param p_disc --values 0.1,1.5 --clients 10 --requests 15"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = execute(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "got: {err:?}");
    }
}
