//! The process-isolation worker protocol (`--isolate`).
//!
//! In isolation mode each sweep cell runs in a re-exec'd child: the
//! parent spawns its own executable with the original sweep argv plus
//! two protocol env vars — [`WORKER_CELL_ENV`] (the cell index) and
//! [`WORKER_FPRINT_ENV`] (the canonical sweep fingerprint, `{:016x}`).
//! The child re-derives the grid from the argv, verifies the
//! fingerprint (so a parent/child binary or argv skew can never produce
//! a silently-wrong cell), runs exactly that cell, and writes the
//! standard journal payload ([`cells::encode_ok`]) to stdout.
//!
//! Because the cell is a real process, the parent can **enforce** the
//! limits thread mode can only observe: a cell overrunning its
//! wall-clock deadline or RSS ceiling (sampled from `/proc/<pid>/statm`)
//! is `kill()`ed and quarantined as a real deadline/oom
//! [`grococa_par::JobFailure`]. Healthy cells return byte-identical
//! reports to thread mode — the payload codec is exact — so `--isolate`
//! changes failure semantics, never results.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use grococa_core::{Report, Simulation};
use grococa_journal::Journal;
use grococa_par::{payload_text, AttemptFailure, FailureKind};

use crate::args::{parse_args, Command as CliCommand};
use crate::cells::{self, CellRecord};
use crate::drain::DRAIN;

/// Env var carrying the cell index a re-exec'd worker must run. Its
/// presence is what switches the binary into worker mode.
pub const WORKER_CELL_ENV: &str = "GROCOCA_WORKER_CELL";

/// Env var carrying the parent's sweep fingerprint (`{:016x}` of the
/// canonical config hash); the worker refuses to run on a mismatch.
pub const WORKER_FPRINT_ENV: &str = "GROCOCA_WORKER_FPRINT";

/// Chaos hook: comma-separated cell indices that loop forever inside
/// the worker instead of simulating — the target for deadline-kill
/// tests. Only honoured in isolation mode (a thread-mode hang would be
/// unkillable by design).
pub const CHAOS_HANG_ENV: &str = "GROCOCA_CHAOS_HANG_CELLS";

/// Chaos hook: comma-separated cell indices that allocate without bound
/// inside the worker — the target for RSS-ceiling-kill tests.
pub const CHAOS_BLOAT_ENV: &str = "GROCOCA_CHAOS_BLOAT_CELLS";

/// Env var carrying the worker's per-cell checkpoint journal path
/// (set by the parent from `--checkpoint DIR`).
pub const WORKER_CKPT_ENV: &str = "GROCOCA_WORKER_CKPT";

/// Env var carrying the worker's checkpoint cadence in events.
pub const WORKER_CKPT_EVERY_ENV: &str = "GROCOCA_WORKER_CKPT_EVERY";

/// Chaos hook: comma-separated cell indices whose worker exits abruptly
/// (no unwinding, like a kill) right after its *first* checkpoint lands
/// durably — but only when the run started fresh, so the supervised
/// retry deterministically exercises the resume-from-checkpoint path.
pub const CHAOS_CKPT_CRASH_ENV: &str = "GROCOCA_CHAOS_CKPT_CRASH";

/// Exit code of the chaos crash-after-checkpoint hook: distinct from
/// success, panic (101) and protocol violations (96).
pub const CHAOS_CKPT_CRASH_EXIT: i32 = 27;

/// The checkpoint journal path for one sweep cell under `dir`.
pub(crate) fn cell_checkpoint_path(dir: &std::path::Path, cell: usize) -> std::path::PathBuf {
    dir.join(format!("cell-{cell}.gcc"))
}

/// Exit code a worker uses for protocol violations (unparsable argv,
/// fingerprint mismatch, out-of-range cell): distinct from both success
/// and the Rust panic exit (101) so the parent can tell "the cell is
/// broken" from "the harness is broken".
pub const WORKER_PROTOCOL_EXIT: u8 = 96;

/// The cell index from [`WORKER_CELL_ENV`], if this process was
/// launched as an isolation worker.
pub fn worker_cell_from_env() -> Option<usize> {
    std::env::var(WORKER_CELL_ENV).ok()?.trim().parse().ok()
}

fn env_cell_list(var: &str) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default()
}

/// Worker-mode entry point: runs `cell` of the sweep described by
/// `argv` and returns the process exit code (0 on success, 101 on a
/// panicking cell, [`WORKER_PROTOCOL_EXIT`] on protocol violations).
pub fn run_worker(cell: usize, argv: &[String]) -> u8 {
    match run_worker_inner(cell, argv) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("worker protocol error: {message}");
            WORKER_PROTOCOL_EXIT
        }
    }
}

fn run_worker_inner(cell: usize, argv: &[String]) -> Result<u8, String> {
    let cli = parse_args(argv).map_err(|e| format!("argv: {e}"))?;
    let CliCommand::Sweep {
        base,
        param,
        values,
        ..
    } = &cli.command
    else {
        return Err("invoked for a non-sweep command".to_string());
    };
    let grid = crate::build_cells(base, param, values).map_err(|e| e.to_string())?;
    let fp = cells::sweep_fingerprint(base, param, values, grid.len());
    let mine = format!("{:016x}", fp.config_hash);
    let parents = std::env::var(WORKER_FPRINT_ENV).unwrap_or_default();
    if parents != mine {
        return Err(format!(
            "sweep fingerprint mismatch: parent {parents:?}, worker {mine:?}"
        ));
    }
    let Some((_, _, cfg)) = grid.get(cell) else {
        return Err(format!("cell {cell} out of range ({} cells)", grid.len()));
    };
    if env_cell_list(CHAOS_HANG_ENV).contains(&cell) {
        // A cell that never finishes: the deadline-kill target.
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    if env_cell_list(CHAOS_BLOAT_ENV).contains(&cell) {
        // A cell whose RSS grows without bound: the oom-kill target.
        // Paced so the parent's sampling loop catches it near the
        // ceiling rather than gigabytes past it.
        let mut hog: Vec<Vec<u8>> = Vec::new();
        loop {
            hog.push(vec![0xA5; 4 << 20]);
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let chaos_fail = crate::chaos_cells();
    let cfg = cfg.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        assert!(
            !chaos_fail.contains(&cell),
            "chaos hook: injected panic for sweep cell {cell}"
        );
        run_cell(cfg, cell)
    }));
    match outcome {
        Ok(Ok(report)) => {
            let payload = cells::encode_ok(cell, &report);
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(&payload)
                .and_then(|()| stdout.flush())
                .map_err(|e| format!("writing result payload: {e}"))?;
            Ok(0)
        }
        Ok(Err(message)) => {
            eprintln!("simulation error: {message}");
            Ok(101)
        }
        Err(payload) => {
            eprintln!("{}", payload_text(payload.as_ref()));
            Ok(101)
        }
    }
}

/// Runs one cell's simulation, resuming from and writing to the per-cell
/// checkpoint journal when the parent configured one ([`WORKER_CKPT_ENV`]).
///
/// Checkpointing here is pure optimisation and every failure around it
/// degrades: a stale or corrupt checkpoint file is recycled, an
/// uncreatable journal means the cell simply runs un-checkpointed. The
/// one thing that must never happen is a cell failing *because of* its
/// checkpoint.
fn run_cell(cfg: grococa_core::SimConfig, cell: usize) -> Result<Report, String> {
    let path = std::env::var(WORKER_CKPT_ENV)
        .ok()
        .filter(|p| !p.is_empty())
        .map(std::path::PathBuf::from);
    let Some(path) = path else {
        return Ok(Simulation::new(cfg).run().report);
    };
    let every: u64 = std::env::var(WORKER_CKPT_EVERY_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(crate::args::DEFAULT_CHECKPOINT_EVERY);
    let fp = crate::checkpoint::fingerprint(&cfg);

    let mut resumed = None;
    let mut journal = None;
    let mut next_seq = 0u64;
    if path.exists() {
        match Journal::open_or_create(&path, &fp) {
            Ok(recovered) => {
                let rec = crate::checkpoint::reassemble(&recovered.records);
                next_seq = rec.next_seq;
                if let Some((seq, r)) =
                    crate::checkpoint::latest_usable(&cfg, &path, &rec.snapshots)
                {
                    eprintln!(
                        "note: cell {cell} resuming from checkpoint {seq} \
                         ({} events already simulated)",
                        r.events_fired()
                    );
                    resumed = Some(r);
                }
                journal = Some(recovered.journal);
            }
            Err(e) => {
                // A leftover file from another sweep shape or binary:
                // recycle it rather than refusing the cell.
                eprintln!(
                    "warning: cell {cell} checkpoint {} unusable ({e}); recreating",
                    path.display()
                );
                std::fs::remove_file(&path).ok();
            }
        }
    }
    if journal.is_none() {
        match Journal::create(&path, &fp) {
            Ok(j) => journal = Some(j),
            Err(e) => eprintln!(
                "warning: cell {cell} cannot create checkpoint {} ({e}); \
                 running without checkpointing",
                path.display()
            ),
        }
    }

    let crash_after_first =
        resumed.is_none() && env_cell_list(CHAOS_CKPT_CRASH_ENV).contains(&cell);
    let mut writer = crate::checkpoint::Writer::new(journal, next_seq);
    let every = if writer.active() { every } else { 0 };
    let mut sink = |bytes: &[u8]| {
        let landed = writer.append(bytes);
        if landed && crash_after_first {
            // Simulates a mid-run kill with one checkpoint durable; the
            // supervised retry must resume, not restart.
            eprintln!("chaos hook: cell {cell} exiting after first durable checkpoint");
            std::process::exit(CHAOS_CKPT_CRASH_EXIT); // tidy:allow(exit-discipline): the chaos hook must die abruptly mid-run, like the kill it stands in for
        }
    };
    let result = match resumed {
        Some(r) => r.try_run_inspect_checkpointed(every, &mut sink),
        None => Simulation::new(cfg).try_run_inspect_checkpointed(every, &mut sink),
    };
    result.map(|(out, _)| out.report).map_err(|e| e.to_string())
}

/// Enforced limits for one isolated cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct Isolation {
    /// Wall-clock deadline; overrunning children are killed.
    pub deadline: Option<Duration>,
    /// RSS ceiling in bytes; children sampled above it are killed.
    pub mem_limit_bytes: Option<u64>,
}

/// The child's resident set size, sampled from `/proc/<pid>/statm`
/// (field 2, resident pages × the standard 4 KiB page). `None` off
/// Linux or once the process is gone — enforcement simply skips the
/// sample rather than guessing.
fn rss_bytes(pid: u32) -> Option<u64> {
    let statm = std::fs::read_to_string(format!("/proc/{pid}/statm")).ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// Runs one cell in a re-exec'd child, enforcing `iso` and drain
/// escalation; the supervision pool's attempt runner for `--isolate`.
///
/// # Errors
///
/// An [`AttemptFailure`] classifying the kill (deadline, oom,
/// drain-kill) or the child's own failure (panic exit, protocol
/// violation, malformed payload).
pub(crate) fn attempt_isolated(
    cell: usize,
    fingerprint_hash: u64,
    iso: &Isolation,
    checkpoint: Option<(&std::path::Path, u64)>,
) -> Result<Report, AttemptFailure> {
    let exe = std::env::current_exe()
        .map_err(|e| AttemptFailure::panic(format!("locating worker executable: {e}")))?;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = Command::new(exe);
    cmd.args(&argv)
        .env(WORKER_CELL_ENV, cell.to_string())
        .env(WORKER_FPRINT_ENV, format!("{fingerprint_hash:016x}"))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    match checkpoint {
        Some((dir, every)) => {
            cmd.env(WORKER_CKPT_ENV, cell_checkpoint_path(dir, cell))
                .env(WORKER_CKPT_EVERY_ENV, every.to_string());
        }
        None => {
            // Never let a stale ambient env turn checkpointing on.
            cmd.env_remove(WORKER_CKPT_ENV)
                .env_remove(WORKER_CKPT_EVERY_ENV);
        }
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| AttemptFailure::panic(format!("spawning worker: {e}")))?;
    let started = Instant::now();
    let mut enforced: Option<(FailureKind, String)> = None;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) => {}
            Err(e) => {
                child.kill().ok();
                enforced = Some((FailureKind::Panic, format!("polling worker: {e}")));
                break;
            }
        }
        if DRAIN.escalated() {
            child.kill().ok();
            enforced = Some((
                FailureKind::DrainKilled,
                "killed by drain escalation (second shutdown signal)".to_string(),
            ));
            break;
        }
        if let Some(deadline) = iso.deadline {
            if started.elapsed() > deadline {
                child.kill().ok();
                enforced = Some((
                    FailureKind::Deadline,
                    format!(
                        "killed after exceeding the {:.1}s cell deadline",
                        deadline.as_secs_f64()
                    ),
                ));
                break;
            }
        }
        if let Some(limit) = iso.mem_limit_bytes {
            if let Some(rss) = rss_bytes(child.id()) {
                if rss > limit {
                    child.kill().ok();
                    enforced = Some((
                        FailureKind::MemLimit,
                        format!(
                            "killed at {} MiB resident, over the {} MiB ceiling",
                            rss >> 20,
                            limit >> 20
                        ),
                    ));
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let output = child
        .wait_with_output()
        .map_err(|e| AttemptFailure::panic(format!("collecting worker output: {e}")))?;
    if let Some((kind, message)) = enforced {
        return Err(AttemptFailure { kind, message });
    }
    if output.status.success() {
        match cells::decode(&output.stdout) {
            Some((index, CellRecord::Ok(report))) if index == cell => Ok(report),
            _ => Err(AttemptFailure::panic(
                "worker exited 0 but returned a malformed result payload".to_string(),
            )),
        }
    } else {
        let stderr = String::from_utf8_lossy(&output.stderr);
        let detail = stderr.trim();
        let code = output
            .status
            .code()
            .map_or_else(|| "on a signal".to_string(), |c| format!("{c}"));
        Err(AttemptFailure::panic(format!(
            "worker exited {code}: {}",
            if detail.is_empty() {
                "(no stderr)"
            } else {
                detail
            }
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_cell_env_parses() {
        // Uses the raw parser contract, not the ambient environment (the
        // test harness must never appear to be a worker).
        assert_eq!("7".trim().parse::<usize>().ok(), Some(7));
        assert!(worker_cell_from_env().is_none() || std::env::var(WORKER_CELL_ENV).is_ok());
    }

    #[test]
    fn rss_of_self_is_plausible() {
        let rss = rss_bytes(std::process::id());
        if let Some(bytes) = rss {
            // A running test binary holds at least a page and under a TiB.
            assert!(bytes >= 4096, "{bytes}");
            assert!(bytes < (1 << 40), "{bytes}");
        }
    }

    #[test]
    fn non_sweep_argv_is_a_protocol_error() {
        let argv: Vec<String> = ["run", "--clients", "10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run_worker(0, &argv), WORKER_PROTOCOL_EXIT);
    }

    #[test]
    fn out_of_range_cell_is_a_protocol_error() {
        let argv: Vec<String> = [
            "sweep",
            "--param",
            "theta",
            "--values",
            "0.5",
            "--clients",
            "10",
            "--requests",
            "10",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run_worker(999, &argv), WORKER_PROTOCOL_EXIT);
    }
}
