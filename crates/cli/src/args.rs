//! Minimal dependency-free argument parsing for the `grococa` binary.
//!
//! Flags are `--name value` pairs (plus a few boolean switches); unknown
//! flags are errors listing the accepted set, so typos fail loudly.

use std::fmt;

use grococa_core::{DataDelivery, FaultPlan, ReplacementPolicy, Scheme, SimConfig};

/// A parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
}

/// Default checkpoint cadence (`--checkpoint-every`): every 20 000
/// dispatched events. Sized for default-scale worlds (snapshots of a
/// few MB land every few seconds at single-digit % overhead); snapshot
/// bytes grow with `num_clients` × `sigma`, so large populations want a
/// much coarser interval — `BENCH_checkpoint.json` has the measured
/// curve at 800 clients and a rule of thumb.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 20_000;

/// The `grococa` subcommands.
#[derive(Debug, Clone)]
pub enum Command {
    /// Run one configuration and print its report.
    Run {
        /// The configuration to simulate.
        cfg: Box<SimConfig>,
        /// Run-level checkpoint journal path (`--checkpoint`): the full
        /// simulation state is snapshotted every `checkpoint_every`
        /// events, so a killed run can resume mid-flight.
        checkpoint: Option<std::path::PathBuf>,
        /// Events between checkpoints (`--checkpoint-every`).
        checkpoint_every: u64,
        /// Resume from the newest good checkpoint in this journal
        /// (`--resume-run`); falls back through older checkpoints on
        /// corruption and to a fresh run when none is usable.
        resume_run: Option<std::path::PathBuf>,
    },
    /// Run all three schemes on one configuration.
    Compare(Box<SimConfig>),
    /// Sweep one parameter across values, all three schemes.
    Sweep {
        /// Base configuration (scheme field ignored — all three run).
        base: Box<SimConfig>,
        /// The swept parameter name.
        param: String,
        /// The values to sweep.
        values: Vec<f64>,
        /// Write-ahead result journal path (`--journal`): each completed
        /// cell is appended and fsync'd, so a killed sweep can resume.
        journal: Option<std::path::PathBuf>,
        /// Resume from the journal (`--resume`): verified completed cells
        /// are skipped, missing/failed ones re-run.
        resume: bool,
        /// Quarantine panicking cells as FAILED rows instead of aborting
        /// the grid (`--keep-going`); maps to exit code 3.
        keep_going: bool,
        /// Run each cell in a re-exec'd child process (`--isolate`) so
        /// deadline/memory limits are enforced by `kill()`, not advisory.
        isolate: bool,
        /// Per-cell wall-clock deadline (`--cell-deadline SECS`). With
        /// `--isolate` an overrunning cell is killed; in thread mode the
        /// deadline is advisory (classifies slow failing cells).
        cell_deadline: Option<std::time::Duration>,
        /// Per-cell RSS ceiling in MiB (`--cell-mem-mb N`); requires
        /// `--isolate` (only a child process can be killed over it).
        cell_mem_mb: Option<u64>,
        /// Per-cell checkpoint directory (`--checkpoint DIR`; requires
        /// `--isolate`): each worker snapshots its run into
        /// `DIR/cell-<idx>.gcc`, so a killed/OOMed cell's retry resumes
        /// mid-run instead of restarting from zero.
        checkpoint: Option<std::path::PathBuf>,
        /// Events between per-cell checkpoints (`--checkpoint-every`).
        checkpoint_every: u64,
    },
    /// Print usage.
    Help,
}

/// A fatal argument error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// The usage text printed by `grococa help`.
pub const USAGE: &str = "\
grococa — group-based P2P cooperative caching simulator

USAGE:
    grococa run     [OPTIONS]          one run, one scheme
    grococa compare [OPTIONS]          one configuration, all three schemes
    grococa sweep --param NAME --values V1,V2,... [SWEEP OPTIONS] [OPTIONS]
    grococa help

OPTIONS (all optional; defaults are the paper's Table II):
    --scheme cc|coca|gc        caching scheme            [default: gc]
    --clients N                number of mobile hosts    [default: 100]
    --requests N               recorded requests / host  [default: 300]
    --seed N                   master random seed        [default: 0xC0CA]
    --cache-size N             items per client cache    [default: 100]
    --policy lru|lfu|fifo      replacement policy        [default: lru]
    --theta X                  Zipf skew                 [default: 0.5]
    --access-range N           items per group window    [default: 1000]
    --group-size N             hosts per motion group    [default: 5]
    --update-rate X            server updates / second   [default: 0]
    --p-disc X                 disconnection probability [default: 0]
    --hop-dist N               broadcast search hops     [default: 2]
    --tran-range M             P2P range, metres         [default: 100]
    --downlink-kbps N          server downlink bandwidth [default: 2000]
    --delta-distance M         TCG distance threshold Δ  [default: 100]
    --delta-similarity X       TCG similarity threshold δ[default: 0.05]
    --hybrid-slots N           enable push channel with N hot slots
    --low-activity X           fraction of low-activity hosts    [default: 0]
    --faults PROFILE           fault injection: none|lossy|flaky|outage|chaos
                               [default: none]
    --delegate-singlets        delegate singlet evictions to low-activity TCG members
    --ndp-tables               use NDP link tables instead of geometry
    --account-beacons          meter NDP beacon power
    --csv                      machine-readable CSV output

RUN CRASH SAFETY (run command only):
    --checkpoint FILE          snapshot the full run state into a fsync'd
                               checkpoint journal every N events; a killed
                               run resumes mid-flight, byte-identical
    --checkpoint-every N       events between checkpoints
                               [default: 20000; requires --checkpoint]
    --resume-run FILE          resume from the newest good checkpoint in
                               FILE (corrupted checkpoints fall back to
                               older ones; none usable = fresh run);
                               combine with --checkpoint FILE to keep
                               checkpointing the resumed run

SWEEP OPTIONS (crash safety; sweeps run on a GROCOCA_JOBS-wide pool):
    --journal FILE             append each completed cell to a fsync'd
                               write-ahead journal (crash-safe)
    --resume                   skip cells already completed in FILE
                               (verifies checksums + sweep fingerprint;
                               requires --journal)
    --keep-going               quarantine panicking cells as FAILED rows
                               instead of aborting the sweep
    --isolate                  run each cell in a re-exec'd child process;
                               deadline/memory limits become hard kills
    --cell-deadline SECS       per-cell wall-clock deadline (enforced with
                               --isolate, advisory otherwise)
    --cell-mem-mb N            per-cell RSS ceiling in MiB (requires
                               --isolate)
    --checkpoint DIR           with --isolate: workers checkpoint each
                               cell into DIR/cell-<idx>.gcc, so a killed
                               cell's retry resumes mid-run (files are
                               removed once the cell result is journaled)

SWEEPABLE PARAMETERS:
    cache_size, theta, access_range, group_size, update_rate, p_disc,
    clients, hop_dist, delta_similarity

EXIT CODES:
    0  success
    1  usage mistake, journal refusal, or aborted sweep
    2  semantically invalid configuration
    3  sweep completed with quarantined (FAILED) cells
    4  sweep drained by SIGINT/SIGTERM (journal flushed; resume with
       --journal FILE --resume)
";

/// Applies `--flag value` to the config. Returns whether the flag consumed
/// a value.
fn apply_flag(cfg: &mut SimConfig, flag: &str, value: Option<&str>) -> Result<bool, ArgError> {
    fn parse<T: std::str::FromStr>(flag: &str, v: Option<&str>) -> Result<T, ArgError> {
        let v = v.ok_or_else(|| err(format!("{flag} needs a value")))?;
        v.parse()
            .map_err(|_| err(format!("invalid value {v:?} for {flag}")))
    }
    match flag {
        "--scheme" => {
            cfg.scheme = match parse::<String>(flag, value)?.as_str() {
                "cc" => Scheme::Conventional,
                "coca" => Scheme::Coca,
                "gc" | "grococa" => Scheme::GroCoca,
                other => return Err(err(format!("unknown scheme {other:?} (cc|coca|gc)"))),
            }
        }
        "--clients" => cfg.num_clients = parse(flag, value)?,
        "--requests" => cfg.requests_per_mh = parse(flag, value)?,
        "--seed" => cfg.seed = parse(flag, value)?,
        "--cache-size" => cfg.cache_size = parse(flag, value)?,
        "--policy" => {
            cfg.cache_policy = match parse::<String>(flag, value)?.as_str() {
                "lru" => ReplacementPolicy::Lru,
                "lfu" => ReplacementPolicy::Lfu,
                "fifo" => ReplacementPolicy::Fifo,
                other => return Err(err(format!("unknown policy {other:?} (lru|lfu|fifo)"))),
            }
        }
        "--theta" => cfg.theta = parse(flag, value)?,
        "--access-range" => cfg.access_range = parse(flag, value)?,
        "--group-size" => cfg.group_size = parse(flag, value)?,
        "--update-rate" => cfg.update_rate = parse(flag, value)?,
        "--p-disc" => cfg.p_disc = parse(flag, value)?,
        "--hop-dist" => cfg.hop_dist = parse(flag, value)?,
        "--tran-range" => cfg.tran_range = parse(flag, value)?,
        "--downlink-kbps" => cfg.downlink_kbps = parse(flag, value)?,
        "--delta-distance" => cfg.tcg_distance = parse(flag, value)?,
        "--delta-similarity" => cfg.tcg_similarity = parse(flag, value)?,
        "--hybrid-slots" => {
            cfg.delivery = DataDelivery::Hybrid {
                push_slots: parse(flag, value)?,
                push_kbps: 2_000,
                refresh_secs: 10.0,
                max_wait_secs: 3.0,
            }
        }
        "--low-activity" => cfg.low_activity_fraction = parse(flag, value)?,
        "--faults" => {
            let name = parse::<String>(flag, value)?;
            cfg.faults = FaultPlan::profile(&name).ok_or_else(|| {
                err(format!(
                    "unknown fault profile {name:?} (one of: {})",
                    FaultPlan::PROFILE_NAMES.join("|")
                ))
            })?;
        }
        "--delegate-singlets" => {
            cfg.delegate_singlets = true;
            return Ok(false);
        }
        "--ndp-tables" => {
            cfg.ndp_tables = true;
            return Ok(false);
        }
        "--account-beacons" => {
            cfg.account_beacons = true;
            return Ok(false);
        }
        _ => return Err(err(format!("unknown option {flag} (see `grococa help`)"))),
    }
    Ok(true)
}

/// Sets a swept parameter on a config.
pub fn apply_sweep_value(cfg: &mut SimConfig, param: &str, x: f64) -> Result<(), ArgError> {
    match param {
        "cache_size" => cfg.cache_size = x as usize,
        "theta" => cfg.theta = x,
        "access_range" => cfg.access_range = x as u64,
        "group_size" => cfg.group_size = x as usize,
        "update_rate" => cfg.update_rate = x,
        "p_disc" => cfg.p_disc = x,
        "clients" => cfg.num_clients = x as usize,
        "hop_dist" => cfg.hop_dist = x as u32,
        "delta_similarity" => cfg.tcg_similarity = x,
        other => {
            return Err(err(format!(
                "unknown sweep parameter {other:?} (see `grococa help`)"
            )))
        }
    }
    Ok(())
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns an [`ArgError`] describing the first malformed argument.
pub fn parse_args(args: &[String]) -> Result<Cli, ArgError> {
    let Some(command) = args.first() else {
        return Ok(Cli {
            command: Command::Help,
            csv: false,
        });
    };
    let mut cfg = SimConfig {
        requests_per_mh: 300,
        ..SimConfig::default()
    };
    let mut csv = false;
    let mut param: Option<String> = None;
    let mut values: Vec<f64> = Vec::new();
    let mut journal: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut keep_going = false;
    let mut isolate = false;
    let mut cell_deadline: Option<std::time::Duration> = None;
    let mut cell_mem_mb: Option<u64> = None;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut resume_run: Option<std::path::PathBuf> = None;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).map(String::as_str);
        match flag {
            "--csv" => {
                csv = true;
                i += 1;
            }
            "--journal" => {
                journal = Some(
                    value
                        .ok_or_else(|| err("--journal needs a file path"))?
                        .into(),
                );
                i += 2;
            }
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--keep-going" => {
                keep_going = true;
                i += 1;
            }
            "--isolate" => {
                isolate = true;
                i += 1;
            }
            "--cell-deadline" => {
                let secs: f64 = value
                    .ok_or_else(|| err("--cell-deadline needs a value in seconds"))?
                    .parse()
                    .map_err(|_| err("invalid --cell-deadline (seconds, e.g. 30 or 0.5)"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(err("--cell-deadline must be a positive number of seconds"));
                }
                cell_deadline = Some(std::time::Duration::from_secs_f64(secs));
                i += 2;
            }
            "--cell-mem-mb" => {
                let mb: u64 = value
                    .ok_or_else(|| err("--cell-mem-mb needs a value in MiB"))?
                    .parse()
                    .map_err(|_| err("invalid --cell-mem-mb (whole MiB, e.g. 512)"))?;
                if mb == 0 {
                    return Err(err("--cell-mem-mb must be positive"));
                }
                cell_mem_mb = Some(mb);
                i += 2;
            }
            "--checkpoint" => {
                checkpoint = Some(
                    value
                        .ok_or_else(|| err("--checkpoint needs a path"))?
                        .into(),
                );
                i += 2;
            }
            "--checkpoint-every" => {
                let every: u64 = value
                    .ok_or_else(|| err("--checkpoint-every needs a value in events"))?
                    .parse()
                    .map_err(|_| err("invalid --checkpoint-every (whole events, e.g. 20000)"))?;
                if every == 0 {
                    return Err(err("--checkpoint-every must be positive"));
                }
                checkpoint_every = Some(every);
                i += 2;
            }
            "--resume-run" => {
                resume_run = Some(
                    value
                        .ok_or_else(|| err("--resume-run needs a file path"))?
                        .into(),
                );
                i += 2;
            }
            "--param" => {
                param = Some(
                    value
                        .ok_or_else(|| err("--param needs a value"))?
                        .to_string(),
                );
                i += 2;
            }
            "--values" => {
                let list = value.ok_or_else(|| err("--values needs a value"))?;
                values = list
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse()
                            .map_err(|_| err(format!("invalid sweep value {v:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            _ => {
                let consumed = apply_flag(&mut cfg, flag, value)?;
                i += if consumed { 2 } else { 1 };
            }
        }
    }

    if command.as_str() != "sweep" {
        for (set, flag) in [
            (journal.is_some(), "--journal"),
            (resume, "--resume"),
            (keep_going, "--keep-going"),
            (isolate, "--isolate"),
            (cell_deadline.is_some(), "--cell-deadline"),
            (cell_mem_mb.is_some(), "--cell-mem-mb"),
        ] {
            if set {
                return Err(err(format!("{flag} is only valid with `sweep`")));
            }
        }
    }
    if resume && journal.is_none() {
        return Err(err("--resume requires --journal FILE"));
    }
    if cell_mem_mb.is_some() && !isolate {
        return Err(err(
            "--cell-mem-mb requires --isolate (only a child process can be killed over it)",
        ));
    }
    if !matches!(command.as_str(), "run" | "sweep") && checkpoint.is_some() {
        return Err(err("--checkpoint is only valid with `run` or `sweep`"));
    }
    if checkpoint_every.is_some() && checkpoint.is_none() {
        return Err(err("--checkpoint-every requires --checkpoint"));
    }
    if resume_run.is_some() && command.as_str() != "run" {
        return Err(err("--resume-run is only valid with `run`"));
    }
    if command.as_str() == "sweep" {
        if resume_run.is_some() {
            return Err(err("--resume-run is only valid with `run`"));
        }
        if checkpoint.is_some() && !isolate {
            return Err(err(
                "sweep --checkpoint requires --isolate (only re-exec'd cells checkpoint)",
            ));
        }
    }
    let checkpoint_every = checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY);

    let command = match command.as_str() {
        "run" => Command::Run {
            cfg: Box::new(cfg),
            checkpoint,
            checkpoint_every,
            resume_run,
        },
        "compare" => Command::Compare(Box::new(cfg)),
        "sweep" => {
            let param = param.ok_or_else(|| err("sweep requires --param"))?;
            if values.is_empty() {
                return Err(err("sweep requires --values v1,v2,..."));
            }
            // Validate the parameter name eagerly.
            apply_sweep_value(&mut cfg.clone(), &param, values[0])?;
            Command::Sweep {
                base: Box::new(cfg),
                param,
                values,
                journal,
                resume,
                keep_going,
                isolate,
                cell_deadline,
                cell_mem_mb,
                checkpoint,
                checkpoint_every,
            }
        }
        "help" | "--help" | "-h" => Command::Help,
        other => {
            return Err(err(format!(
                "unknown command {other:?} (see `grococa help`)"
            )))
        }
    };
    Ok(Cli { command, csv })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn run_with_options() {
        let cli = parse_args(&argv(
            "run --scheme coca --clients 42 --theta 0.8 --csv --seed 7",
        ))
        .unwrap();
        assert!(cli.csv);
        match cli.command {
            Command::Run { cfg, .. } => {
                assert_eq!(cfg.scheme, Scheme::Coca);
                assert_eq!(cfg.num_clients, 42);
                assert_eq!(cfg.theta, 0.8);
                assert_eq!(cfg.seed, 7);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn sweep_parses_param_and_values() {
        let cli = parse_args(&argv(
            "sweep --param cache_size --values 50,100,150 --scheme gc",
        ))
        .unwrap();
        match cli.command {
            Command::Sweep { param, values, .. } => {
                assert_eq!(param, "cache_size");
                assert_eq!(values, vec![50.0, 100.0, 150.0]);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn sweep_requires_param_and_values() {
        assert!(parse_args(&argv("sweep --values 1,2")).is_err());
        assert!(parse_args(&argv("sweep --param theta")).is_err());
        assert!(parse_args(&argv("sweep --param bogus --values 1")).is_err());
    }

    #[test]
    fn sweep_durability_flags_parse() {
        let cli = parse_args(&argv(
            "sweep --param theta --values 0.2,0.8 --journal out.gcj --resume --keep-going",
        ))
        .unwrap();
        match cli.command {
            Command::Sweep {
                journal,
                resume,
                keep_going,
                ..
            } => {
                assert_eq!(journal.as_deref(), Some(std::path::Path::new("out.gcj")));
                assert!(resume);
                assert!(keep_going);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn durability_flags_are_sweep_only_and_consistent() {
        let e = parse_args(&argv("run --journal j.gcj")).unwrap_err();
        assert!(e.to_string().contains("only valid with `sweep`"));
        assert!(parse_args(&argv("compare --resume")).is_err());
        assert!(parse_args(&argv("run --keep-going")).is_err());
        let e = parse_args(&argv("sweep --param theta --values 0.2 --resume")).unwrap_err();
        assert!(e.to_string().contains("requires --journal"));
        assert!(parse_args(&argv("sweep --param theta --values 0.2 --journal")).is_err());
    }

    #[test]
    fn isolation_flags_parse() {
        let cli = parse_args(&argv(
            "sweep --param theta --values 0.2 --isolate --cell-deadline 2.5 --cell-mem-mb 512",
        ))
        .unwrap();
        match cli.command {
            Command::Sweep {
                isolate,
                cell_deadline,
                cell_mem_mb,
                ..
            } => {
                assert!(isolate);
                assert_eq!(cell_deadline, Some(std::time::Duration::from_secs_f64(2.5)));
                assert_eq!(cell_mem_mb, Some(512));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn isolation_flags_are_validated() {
        // --cell-mem-mb without --isolate cannot be enforced.
        let e =
            parse_args(&argv("sweep --param theta --values 0.2 --cell-mem-mb 512")).unwrap_err();
        assert!(e.to_string().contains("requires --isolate"), "{e}");
        // Sweep-only.
        assert!(parse_args(&argv("run --isolate")).is_err());
        assert!(parse_args(&argv("run --cell-deadline 2")).is_err());
        assert!(parse_args(&argv("compare --cell-mem-mb 10")).is_err());
        // Malformed values.
        for bad in [
            "sweep --param theta --values 0.2 --cell-deadline 0",
            "sweep --param theta --values 0.2 --cell-deadline -1",
            "sweep --param theta --values 0.2 --cell-deadline soon",
            "sweep --param theta --values 0.2 --isolate --cell-mem-mb 0",
            "sweep --param theta --values 0.2 --isolate --cell-mem-mb lots",
        ] {
            assert!(parse_args(&argv(bad)).is_err(), "{bad} must be rejected");
        }
        // A thread-mode (advisory) deadline without --isolate is fine.
        assert!(parse_args(&argv("sweep --param theta --values 0.2 --cell-deadline 30")).is_ok());
    }

    #[test]
    fn boolean_switches_consume_no_value() {
        let cli = parse_args(&argv("run --ndp-tables --account-beacons --clients 9")).unwrap();
        match cli.command {
            Command::Run { cfg, .. } => {
                assert!(cfg.ndp_tables);
                assert!(cfg.account_beacons);
                assert_eq!(cfg.num_clients, 9);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn hybrid_flag_sets_delivery() {
        let cli = parse_args(&argv("run --hybrid-slots 500")).unwrap();
        match cli.command {
            Command::Run { cfg, .. } => {
                assert!(matches!(
                    cfg.delivery,
                    DataDelivery::Hybrid {
                        push_slots: 500,
                        ..
                    }
                ));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn unknown_flags_and_schemes_error() {
        assert!(parse_args(&argv("run --bogus 1")).is_err());
        assert!(parse_args(&argv("run --scheme magic")).is_err());
        assert!(parse_args(&argv("run --policy random")).is_err());
        assert!(parse_args(&argv("explode")).is_err());
        assert!(parse_args(&argv("run --clients")).is_err());
        assert!(parse_args(&argv("run --clients nine")).is_err());
    }

    #[test]
    fn faults_flag_selects_a_profile() {
        let cli = parse_args(&argv("run --faults chaos --clients 9")).unwrap();
        match cli.command {
            Command::Run { cfg, .. } => {
                assert!(cfg.faults.active());
                assert_eq!(cfg.faults.p2p_loss, 0.25);
            }
            other => panic!("wrong command {other:?}"),
        }
        let none = parse_args(&argv("run --faults none")).unwrap();
        match none.command {
            Command::Run { cfg, .. } => assert!(!cfg.faults.active()),
            other => panic!("wrong command {other:?}"),
        }
        let e = parse_args(&argv("run --faults mayhem")).unwrap_err();
        assert!(e.to_string().contains("mayhem"));
        assert!(e.to_string().contains("chaos"));
    }

    #[test]
    fn no_args_is_help() {
        assert!(matches!(parse_args(&[]).unwrap().command, Command::Help));
        assert!(matches!(
            parse_args(&argv("help")).unwrap().command,
            Command::Help
        ));
    }

    #[test]
    fn apply_sweep_value_covers_documented_params() {
        let mut cfg = SimConfig::default();
        for (p, v) in [
            ("cache_size", 64.0),
            ("theta", 0.7),
            ("access_range", 500.0),
            ("group_size", 8.0),
            ("update_rate", 2.0),
            ("p_disc", 0.1),
            ("clients", 33.0),
            ("hop_dist", 3.0),
            ("delta_similarity", 0.2),
        ] {
            apply_sweep_value(&mut cfg, p, v).unwrap();
        }
        assert_eq!(cfg.cache_size, 64);
        assert_eq!(cfg.num_clients, 33);
        assert_eq!(cfg.hop_dist, 3);
    }
}
