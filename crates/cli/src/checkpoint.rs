//! Run-level checkpoint files: full-state snapshots riding the
//! crash-safe [`grococa_journal`] format.
//!
//! A checkpoint file is an ordinary journal whose records carry
//! [`grococa_core`] snapshots (see `grococa run --checkpoint`). Because
//! the journal already checksums every record, fsyncs every append and
//! rolls torn writes back to the last clean prefix, a checkpoint file
//! inherits the whole disk-fault story for free — including the
//! [`crate::CHAOS_JOURNAL_ENV`] chaos harness.
//!
//! Large snapshots (big GroCoca populations carry dense n×n affinity
//! matrices) are split across consecutive records of at most [`CHUNK`]
//! bytes and reassembled on load. A checkpoint is usable only when every
//! chunk landed, so a crash mid-append drops the *whole* in-flight
//! checkpoint and the loader falls back to the previous complete one —
//! never half of one.
//!
//! ```text
//! record payload: seq u64 LE │ chunk u32 LE │ total u32 LE │ bytes
//! ```
//!
//! The loader is a fallback ladder: journal recovery discards a torn
//! tail, [`reassemble`] discards incomplete chunk groups, and
//! [`latest_usable`] walks complete snapshots newest-first past any
//! whose body fails [`grococa_core::Simulation::resume`] (version or
//! checksum mismatch, structural damage). Only when every rung fails
//! does the run start fresh — it never panics and never refuses.

use std::path::Path;

use grococa_core::{ResumedSimulation, SimConfig, Simulation};
use grococa_journal::{Fingerprint, Journal};
use grococa_par::warn_once;

/// Maximum snapshot bytes per journal record. Comfortably under the
/// journal's implausible-length ceiling, so a scanner never mistakes a
/// legitimate chunk for corruption.
const CHUNK: usize = 8 << 20;

/// Chunk header bytes: seq u64 + chunk u32 + total u32.
const CHUNK_HEADER: usize = 16;

/// The checkpoint journal fingerprint: the run's canonical config hash,
/// one "cell", this crate's version. Resuming under a different
/// configuration or binary refuses up front instead of replaying state
/// the new code cannot interpret.
pub fn fingerprint(cfg: &SimConfig) -> Fingerprint {
    Fingerprint {
        config_hash: cfg.canonical_fingerprint(),
        cells: 1,
        version: env!("CARGO_PKG_VERSION").to_string(),
    }
}

/// Splits one snapshot into journal record payloads.
fn encode_chunks(seq: u64, snapshot: &[u8]) -> Vec<Vec<u8>> {
    let total = snapshot.len().div_ceil(CHUNK).max(1) as u32;
    let mut out = Vec::with_capacity(total as usize);
    // `chunks` on an empty slice yields nothing; an empty snapshot still
    // needs its one (empty-bodied) record.
    let parts: Vec<&[u8]> = if snapshot.is_empty() {
        vec![&[]]
    } else {
        snapshot.chunks(CHUNK).collect()
    };
    for (i, part) in parts.iter().enumerate() {
        let mut payload = Vec::with_capacity(CHUNK_HEADER + part.len());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&(i as u32).to_le_bytes());
        payload.extend_from_slice(&total.to_le_bytes());
        payload.extend_from_slice(part);
        out.push(payload);
    }
    out
}

/// Parses one record payload into (seq, chunk, total, body). Total:
/// malformed payloads are `None` and the reassembler skips them.
fn decode_chunk(payload: &[u8]) -> Option<(u64, u32, u32, &[u8])> {
    if payload.len() < CHUNK_HEADER {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let chunk = u32::from_le_bytes(payload[8..12].try_into().ok()?);
    let total = u32::from_le_bytes(payload[12..16].try_into().ok()?);
    if total == 0 || chunk >= total {
        return None;
    }
    Some((seq, chunk, total, &payload[CHUNK_HEADER..]))
}

/// What [`reassemble`] recovered from a checkpoint journal's records.
pub struct RecoveredCheckpoints {
    /// Complete snapshots in append order (oldest first), each with its
    /// checkpoint sequence number.
    pub snapshots: Vec<(u64, Vec<u8>)>,
    /// The sequence number a continued run should stamp next: one past
    /// the newest sequence seen, complete or not.
    pub next_seq: u64,
}

/// Reassembles complete snapshots from raw journal records. Chunks of
/// one checkpoint are appended consecutively by a single writer, so a
/// linear scan suffices: any gap, reorder or malformed record abandons
/// the group in progress (that checkpoint was torn) and scanning
/// continues with the next group.
pub fn reassemble(records: &[Vec<u8>]) -> RecoveredCheckpoints {
    let mut snapshots: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut next_seq = 0u64;
    let mut current: Option<(u64, u32, Vec<u8>)> = None; // (seq, total, body)
    for record in records {
        let Some((seq, chunk, total, body)) = decode_chunk(record) else {
            current = None;
            continue;
        };
        next_seq = next_seq.max(seq + 1);
        if chunk == 0 {
            current = Some((seq, total, body.to_vec()));
        } else {
            match &mut current {
                Some((cur_seq, cur_total, parts))
                    if *cur_seq == seq
                        && *cur_total == total
                        && parts.len().div_ceil(CHUNK) == chunk as usize =>
                {
                    parts.extend_from_slice(body);
                }
                _ => current = None,
            }
        }
        let complete = current
            .as_ref()
            .is_some_and(|(_, cur_total, _)| chunk + 1 == *cur_total);
        if complete {
            if let Some((seq, _, body)) = current.take() {
                snapshots.push((seq, body));
            }
        }
    }
    RecoveredCheckpoints {
        snapshots,
        next_seq,
    }
}

/// Walks complete snapshots newest-first and returns the first that
/// restores under `cfg`, warning (once per rung) about any it skips.
/// `None` means every checkpoint was unusable: the caller starts fresh.
pub fn latest_usable(
    cfg: &SimConfig,
    path: &Path,
    snapshots: &[(u64, Vec<u8>)],
) -> Option<(u64, ResumedSimulation)> {
    for (seq, bytes) in snapshots.iter().rev() {
        match Simulation::resume(cfg.clone(), bytes) {
            Ok(resumed) => return Some((*seq, resumed)),
            Err(e) => warn_once(
                &format!("checkpoint-fallback-{seq}"),
                &format!(
                    "checkpoint {seq} in {} is unusable ({e}); \
                     falling back to an older one",
                    path.display()
                ),
            ),
        }
    }
    None
}

/// The checkpoint sink handed to
/// [`grococa_core::Simulation::try_run_inspect_checkpointed`]. Appends
/// are best-effort: a disk fault warns once, drops the journal and lets
/// the run finish un-checkpointed — a checkpoint is an optimisation and
/// must never kill the simulation it protects.
pub struct Writer {
    journal: Option<Journal>,
    seq: u64,
}

impl Writer {
    /// A writer over an open journal (or a no-op one for `None`),
    /// stamping checkpoints from `next_seq`.
    pub fn new(journal: Option<Journal>, next_seq: u64) -> Writer {
        Writer {
            journal,
            seq: next_seq,
        }
    }

    /// Whether appends still reach a journal.
    pub fn active(&self) -> bool {
        self.journal.is_some()
    }

    /// Appends one snapshot as a chunked checkpoint. Returns `true` when
    /// every chunk landed durably.
    pub fn append(&mut self, snapshot: &[u8]) -> bool {
        let Some(journal) = self.journal.as_mut() else {
            return false;
        };
        let seq = self.seq;
        self.seq += 1;
        for payload in encode_chunks(seq, snapshot) {
            if let Err(e) = journal.append(&payload) {
                warn_once(
                    "checkpoint-degrade",
                    &format!(
                        "checkpoint append failed ({e}); continuing WITHOUT \
                         checkpointing — a crash from here on restarts from \
                         the last durable checkpoint"
                    ),
                );
                // A partial chunk group is already rolled back (or will
                // be discarded by reassembly); older complete
                // checkpoints on disk stay usable.
                self.journal = None;
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_snapshot_is_one_chunk() {
        let recs = encode_chunks(3, b"hello");
        assert_eq!(recs.len(), 1);
        let (seq, chunk, total, body) = decode_chunk(&recs[0]).expect("decodes");
        assert_eq!((seq, chunk, total, body), (3, 0, 1, &b"hello"[..]));
    }

    #[test]
    fn chunked_snapshot_reassembles_exactly() {
        let snapshot: Vec<u8> = (0..(CHUNK * 2 + 7)).map(|i| i as u8).collect();
        let recs = encode_chunks(9, &snapshot);
        assert_eq!(recs.len(), 3);
        let rec = reassemble(&recs);
        assert_eq!(rec.next_seq, 10);
        assert_eq!(rec.snapshots.len(), 1);
        assert_eq!(rec.snapshots[0].0, 9);
        assert_eq!(rec.snapshots[0].1, snapshot);
    }

    #[test]
    fn missing_tail_chunk_drops_the_whole_checkpoint() {
        let snapshot = vec![0xAB; CHUNK + 1];
        let mut records = encode_chunks(0, b"old");
        let mut torn = encode_chunks(1, &snapshot);
        torn.pop();
        records.extend(torn);
        let rec = reassemble(&records);
        assert_eq!(rec.snapshots.len(), 1);
        assert_eq!(rec.snapshots[0], (0, b"old".to_vec()));
        // The torn seq still advances the stamp so a continued run never
        // reuses it.
        assert_eq!(rec.next_seq, 2);
    }

    #[test]
    fn malformed_records_are_skipped_not_fatal() {
        let mut records = vec![vec![1, 2, 3]]; // shorter than a header
        records.extend(encode_chunks(4, b"good"));
        records.push(vec![0; CHUNK_HEADER]); // total == 0
        let rec = reassemble(&records);
        assert_eq!(rec.snapshots, vec![(4, b"good".to_vec())]);
    }

    #[test]
    fn interrupted_group_then_fresh_group_recovers() {
        let big = vec![7u8; CHUNK + 5];
        let mut records: Vec<Vec<u8>> = encode_chunks(0, &big)[..1].to_vec();
        records.extend(encode_chunks(1, b"fresh"));
        let rec = reassemble(&records);
        assert_eq!(rec.snapshots, vec![(1, b"fresh".to_vec())]);
        assert_eq!(rec.next_seq, 2);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let recs = encode_chunks(0, b"");
        assert_eq!(recs.len(), 1);
        let rec = reassemble(&recs);
        assert_eq!(rec.snapshots, vec![(0, Vec::new())]);
    }
}
