//! The wireless power-consumption model of the paper's Section V.A.
//!
//! The paper adopts Feeney & Nilsson's linear measurement model (INFOCOM
//! '01): every P2P transmission charges each mobile host in range a cost
//! `v · bytes + f` µW·s, with coefficients depending on the host's *role* in
//! the transmission — sender, destination, or a bystander that overhears and
//! discards the message (Table I). The infrastructure NIC (to the mobile
//! support station) is not metered, matching the paper.
//!
//! # Examples
//!
//! ```
//! use grococa_power::{P2pRole, PowerMeter, PowerModel};
//!
//! let model = PowerModel::default();
//! let mut meter = PowerMeter::new();
//! meter.charge_p2p(&model, P2pRole::Sender, 1_000);
//! meter.charge_p2p(&model, P2pRole::Destination, 1_000);
//! assert!(meter.total_uws() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A mobile host's role in a point-to-point P2P transmission (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum P2pRole {
    /// `m = S`: the transmitting host.
    Sender,
    /// `m = D`: the destination host.
    Destination,
    /// `m ∈ S_R ∩ D_R`: overhears both sides, discards.
    DiscardBothRanges,
    /// `m ∈ S_R, m ∉ D_R`: overhears the send only, discards.
    DiscardSenderRange,
    /// `m ∉ S_R, m ∈ D_R`: overhears the destination side only, discards.
    DiscardDestRange,
}

/// A mobile host's role in a broadcast P2P transmission (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BroadcastRole {
    /// `m = S`: the broadcasting host.
    Sender,
    /// `m ∈ S_R`: receives the broadcast.
    Receiver,
}

/// Linear power coefficients: cost = `v`·bytes + `f`, in µW·s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCost {
    /// Variable cost per byte, µW·s/byte.
    pub v: f64,
    /// Fixed setup cost per message, µW·s.
    pub f: f64,
}

impl LinearCost {
    /// Cost of a `bytes`-byte message, µW·s.
    pub fn cost(&self, bytes: u64) -> f64 {
        self.v * bytes as f64 + self.f
    }
}

/// The full coefficient table (paper Table I).
///
/// The scraped paper text preserves the fixed discard costs (70 / 24 / 56
/// µW·s); the remaining coefficients come from Feeney & Nilsson's published
/// WaveLAN measurements, as documented in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Point-to-point send (`m = S`).
    pub p2p_send: LinearCost,
    /// Point-to-point receive (`m = D`).
    pub p2p_recv: LinearCost,
    /// Discard while in both the sender's and destination's range.
    pub p2p_disc_both: LinearCost,
    /// Discard while in the sender's range only.
    pub p2p_disc_sender: LinearCost,
    /// Discard while in the destination's range only.
    pub p2p_disc_dest: LinearCost,
    /// Broadcast send.
    pub bc_send: LinearCost,
    /// Broadcast receive.
    pub bc_recv: LinearCost,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            p2p_send: LinearCost { v: 1.9, f: 454.0 },
            p2p_recv: LinearCost { v: 0.5, f: 356.0 },
            p2p_disc_both: LinearCost { v: 0.0, f: 70.0 },
            p2p_disc_sender: LinearCost { v: 0.0, f: 24.0 },
            p2p_disc_dest: LinearCost { v: 0.0, f: 56.0 },
            bc_send: LinearCost { v: 1.9, f: 266.0 },
            bc_recv: LinearCost { v: 0.5, f: 56.0 },
        }
    }
}

impl PowerModel {
    /// Cost of a point-to-point message of `bytes` bytes for a host in
    /// `role`, µW·s.
    pub fn p2p_cost(&self, role: P2pRole, bytes: u64) -> f64 {
        match role {
            P2pRole::Sender => self.p2p_send.cost(bytes),
            P2pRole::Destination => self.p2p_recv.cost(bytes),
            P2pRole::DiscardBothRanges => self.p2p_disc_both.cost(bytes),
            P2pRole::DiscardSenderRange => self.p2p_disc_sender.cost(bytes),
            P2pRole::DiscardDestRange => self.p2p_disc_dest.cost(bytes),
        }
    }

    /// Cost of a broadcast message of `bytes` bytes for a host in `role`,
    /// µW·s.
    pub fn broadcast_cost(&self, role: BroadcastRole, bytes: u64) -> f64 {
        match role {
            BroadcastRole::Sender => self.bc_send.cost(bytes),
            BroadcastRole::Receiver => self.bc_recv.cost(bytes),
        }
    }
}

/// A per-host energy accumulator, split by accounting category so the
/// harness can report where power goes (searching, serving, signatures,
/// overhearing).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerMeter {
    total: f64,
    sent: f64,
    received: f64,
    discarded: f64,
}

impl PowerMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        PowerMeter::default()
    }

    /// Charges a point-to-point message.
    pub fn charge_p2p(&mut self, model: &PowerModel, role: P2pRole, bytes: u64) {
        let c = model.p2p_cost(role, bytes);
        self.total += c;
        match role {
            P2pRole::Sender => self.sent += c,
            P2pRole::Destination => self.received += c,
            _ => self.discarded += c,
        }
    }

    /// Charges a broadcast message.
    pub fn charge_broadcast(&mut self, model: &PowerModel, role: BroadcastRole, bytes: u64) {
        let c = model.broadcast_cost(role, bytes);
        self.total += c;
        match role {
            BroadcastRole::Sender => self.sent += c,
            BroadcastRole::Receiver => self.received += c,
        }
    }

    /// Total energy, µW·s.
    pub fn total_uws(&self) -> f64 {
        self.total
    }

    /// Energy spent transmitting, µW·s.
    pub fn sent_uws(&self) -> f64 {
        self.sent
    }

    /// Energy spent receiving as a destination / broadcast receiver, µW·s.
    pub fn received_uws(&self) -> f64 {
        self.received
    }

    /// Energy wasted discarding unintended messages, µW·s.
    pub fn discarded_uws(&self) -> f64 {
        self.discarded
    }

    /// Rebuilds a meter from its category totals, as returned by the
    /// `*_uws` getters (checkpointing support).
    pub fn from_parts(total: f64, sent: f64, received: f64, discarded: f64) -> Self {
        PowerMeter {
            total,
            sent,
            received,
            discarded,
        }
    }

    /// Folds another meter into this one.
    pub fn merge(&mut self, other: &PowerMeter) {
        self.total += other.total;
        self.sent += other.sent;
        self.received += other.received;
        self.discarded += other.discarded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_discard_costs_are_fixed() {
        let m = PowerModel::default();
        // Discard costs have no per-byte component, so size is irrelevant.
        assert_eq!(m.p2p_cost(P2pRole::DiscardBothRanges, 0), 70.0);
        assert_eq!(m.p2p_cost(P2pRole::DiscardBothRanges, 10_000), 70.0);
        assert_eq!(m.p2p_cost(P2pRole::DiscardSenderRange, 999), 24.0);
        assert_eq!(m.p2p_cost(P2pRole::DiscardDestRange, 999), 56.0);
    }

    #[test]
    fn send_costs_scale_with_size() {
        let m = PowerModel::default();
        let small = m.p2p_cost(P2pRole::Sender, 100);
        let large = m.p2p_cost(P2pRole::Sender, 1_000);
        assert!((small - (1.9 * 100.0 + 454.0)).abs() < 1e-9);
        assert!(large > small);
    }

    #[test]
    fn broadcast_is_cheaper_setup_than_p2p() {
        // Feeney's measurements: broadcast skips the RTS/CTS handshake, so
        // its fixed costs are lower than point-to-point at both ends.
        let m = PowerModel::default();
        assert!(m.bc_send.f < m.p2p_send.f);
        assert!(m.bc_recv.f < m.p2p_recv.f);
    }

    #[test]
    fn meter_categorises_energy() {
        let model = PowerModel::default();
        let mut meter = PowerMeter::new();
        meter.charge_p2p(&model, P2pRole::Sender, 100);
        meter.charge_p2p(&model, P2pRole::Destination, 100);
        meter.charge_p2p(&model, P2pRole::DiscardBothRanges, 100);
        meter.charge_broadcast(&model, BroadcastRole::Receiver, 100);
        let expected_total =
            (1.9 * 100.0 + 454.0) + (0.5 * 100.0 + 356.0) + 70.0 + (0.5 * 100.0 + 56.0);
        assert!((meter.total_uws() - expected_total).abs() < 1e-9);
        assert!((meter.discarded_uws() - 70.0).abs() < 1e-9);
        assert!(meter.sent_uws() > 0.0 && meter.received_uws() > 0.0);
    }

    #[test]
    fn meter_merge_sums_categories() {
        let model = PowerModel::default();
        let mut a = PowerMeter::new();
        let mut b = PowerMeter::new();
        a.charge_p2p(&model, P2pRole::Sender, 10);
        b.charge_p2p(&model, P2pRole::DiscardDestRange, 10);
        let mut merged = a;
        merged.merge(&b);
        assert!((merged.total_uws() - (a.total_uws() + b.total_uws())).abs() < 1e-12);
        assert_eq!(merged.discarded_uws(), b.discarded_uws());
    }
}
