//! The push-based data dissemination channel (a flat broadcast disk).
//!
//! The paper's introduction contrasts pull-based dissemination with
//! push-based and hybrid models, in which the MSS cyclically broadcasts
//! popular items on a scalable downlink that every host can tune into;
//! the authors evaluate COCA in such a hybrid environment in a companion
//! paper. [`PushSchedule`] models the flat (single-disk) broadcast
//! program: a cycle of equal slots, one item per slot, repeating forever.

use grococa_sim::SimTime;

/// A cyclic broadcast program: `items[i]` occupies slot `i` of every
/// cycle, each slot lasting `slot_time`.
///
/// # Examples
///
/// ```
/// use grococa_net::PushSchedule;
/// use grococa_sim::SimTime;
///
/// let slot = SimTime::from_millis(10);
/// let sched = PushSchedule::new(vec![7, 8, 9], slot);
/// assert_eq!(sched.cycle_time(), SimTime::from_millis(30));
/// // Item 8's first delivery completes at the end of slot 1.
/// assert_eq!(
///     sched.next_delivery(8, SimTime::ZERO),
///     Some(SimTime::from_millis(20))
/// );
/// assert_eq!(sched.next_delivery(99, SimTime::ZERO), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PushSchedule {
    items: Vec<u64>,
    slot_time: SimTime,
}

impl PushSchedule {
    /// Creates a schedule broadcasting `items` cyclically, one per
    /// `slot_time`. An empty item list is a silent channel.
    ///
    /// # Panics
    ///
    /// Panics if `slot_time` is zero while items are scheduled.
    pub fn new(items: Vec<u64>, slot_time: SimTime) -> Self {
        assert!(
            items.is_empty() || slot_time > SimTime::ZERO,
            "broadcast slots must take time"
        );
        PushSchedule { items, slot_time }
    }

    /// Number of items in the cycle.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the channel is silent.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// One full cycle's duration.
    pub fn cycle_time(&self) -> SimTime {
        SimTime::from_micros(self.slot_time.as_micros() * self.items.len() as u64)
    }

    /// Whether `key` is on the program.
    pub fn contains(&self, key: u64) -> bool {
        self.items.contains(&key)
    }

    /// The completion instant of the next broadcast of `key` at or after
    /// `now`, or `None` if `key` is not scheduled.
    ///
    /// A host that tunes in at `now` must wait for a *complete* slot: if
    /// `now` falls inside `key`'s slot, the delivery only lands next
    /// cycle.
    pub fn next_delivery(&self, key: u64, now: SimTime) -> Option<SimTime> {
        let index = self.items.iter().position(|&k| k == key)? as u64;
        let slot = self.slot_time.as_micros();
        let cycle = slot * self.items.len() as u64;
        let start_this_cycle = (now.as_micros() / cycle) * cycle + index * slot;
        let start = if start_this_cycle >= now.as_micros() {
            start_this_cycle
        } else {
            start_this_cycle + cycle
        };
        Some(SimTime::from_micros(start + slot))
    }

    /// Mean waiting time for a scheduled item from a uniformly random
    /// tune-in instant: half a cycle plus one slot.
    pub fn expected_wait(&self) -> SimTime {
        if self.items.is_empty() {
            return SimTime::ZERO;
        }
        SimTime::from_micros(self.cycle_time().as_micros() / 2 + self.slot_time.as_micros())
    }

    /// The scheduled items, in slot order.
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// One slot's duration, for checkpointing (pairs with
    /// [`PushSchedule::items`] to reconstruct the schedule).
    pub fn slot_time(&self) -> SimTime {
        self.slot_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> PushSchedule {
        PushSchedule::new(vec![10, 20, 30, 40], SimTime::from_millis(5))
    }

    #[test]
    fn delivery_times_follow_slots() {
        let s = sched();
        // Tune in at t = 0: item 10 completes at 5 ms, 40 at 20 ms.
        assert_eq!(
            s.next_delivery(10, SimTime::ZERO),
            Some(SimTime::from_millis(5))
        );
        assert_eq!(
            s.next_delivery(40, SimTime::ZERO),
            Some(SimTime::from_millis(20))
        );
    }

    #[test]
    fn mid_slot_tune_in_waits_a_full_cycle() {
        let s = sched();
        // Item 10's slot is [0, 5) ms. Tuning in at 1 ms misses its start.
        assert_eq!(
            s.next_delivery(10, SimTime::from_millis(1)),
            Some(SimTime::from_millis(25))
        );
        // But item 20's slot [5, 10) has not started yet.
        assert_eq!(
            s.next_delivery(20, SimTime::from_millis(1)),
            Some(SimTime::from_millis(10))
        );
    }

    #[test]
    fn slot_boundary_is_inclusive_of_the_upcoming_slot() {
        let s = sched();
        // Exactly at t = 5 ms, item 20's slot starts now: catch it.
        assert_eq!(
            s.next_delivery(20, SimTime::from_millis(5)),
            Some(SimTime::from_millis(10))
        );
    }

    #[test]
    fn later_cycles_repeat() {
        let s = sched();
        let first = s.next_delivery(30, SimTime::ZERO).unwrap();
        let second = s.next_delivery(30, first).unwrap();
        assert_eq!(second - first, s.cycle_time());
    }

    #[test]
    fn unscheduled_items_return_none() {
        assert_eq!(sched().next_delivery(99, SimTime::ZERO), None);
        assert!(!sched().contains(99));
        assert!(sched().contains(20));
    }

    #[test]
    fn empty_schedule_is_silent() {
        let s = PushSchedule::new(Vec::new(), SimTime::ZERO);
        assert!(s.is_empty());
        assert_eq!(s.next_delivery(1, SimTime::ZERO), None);
        assert_eq!(s.expected_wait(), SimTime::ZERO);
        assert_eq!(s.cycle_time(), SimTime::ZERO);
    }

    #[test]
    fn expected_wait_is_half_cycle_plus_slot() {
        let s = sched(); // cycle 20 ms, slot 5 ms
        assert_eq!(s.expected_wait(), SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "slots must take time")]
    fn zero_slot_with_items_rejected() {
        PushSchedule::new(vec![1], SimTime::ZERO);
    }
}
