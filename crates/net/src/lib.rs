//! The wireless communication model (paper Section V, architecture of
//! Section III).
//!
//! Two channels exist, matching the paper's integrated architecture:
//!
//! * the **server channel** ([`ServerChannel`]) between mobile hosts and the
//!   mobile support station — a shared uplink and a shared downlink, each a
//!   FIFO queueing facility of fixed bandwidth (this is the scalability
//!   bottleneck Figure 7 probes);
//! * the **P2P channel** ([`P2pChannel`]) among the hosts — a half-duplex
//!   radio per host with a common bandwidth and transmission range, over
//!   which hosts broadcast requests and exchange replies, retrieves and
//!   cache signatures.
//!
//! Message wire sizes live in [`MessageSizes`]; the power cost of every
//! message is charged by the caller through `grococa-power`. The
//! beacon-maintained neighbour discovery protocol of Section III lives in
//! [`Ndp`].
//!
//! # Examples
//!
//! ```
//! use grococa_net::{MessageSizes, P2pChannel, ServerChannel};
//! use grococa_sim::SimTime;
//!
//! let sizes = MessageSizes::default();
//! let mut server = ServerChannel::new(200, 2_000);
//! let now = SimTime::from_secs(1);
//! let at_mss = server.request_arrival(now, sizes.server_request);
//! let at_mh = server.response_arrival(at_mss, sizes.header + sizes.data_item);
//! assert!(at_mh > at_mss && at_mss > now);
//!
//! let mut p2p = P2pChannel::new(10, 2_000);
//! let delivered = p2p.send(3, now, sizes.p2p_request);
//! assert!(delivered > now);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ndp;
mod push;

pub use ndp::{LinkEvent, Ndp, NdpConfig};
pub use push::PushSchedule;

use grococa_sim::{transmission_time, Facility, SimTime};

/// Wire sizes of every message kind, in bytes.
///
/// The paper does not publish its message sizes (the scraped table is
/// illegible); these defaults are conventional for the message contents and
/// are all configurable. Signature payloads are *not* included here — their
/// size depends on compression and is computed per message by the signature
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageSizes {
    /// A P2P broadcast `request` (item id + requester id), excluding any
    /// piggybacked signature-update lists.
    pub p2p_request: u64,
    /// A P2P `reply` ("I have it").
    pub p2p_reply: u64,
    /// A P2P `retrieve` ("send it to me").
    pub p2p_retrieve: u64,
    /// A `SigRequest` control message, excluding membership list payload.
    pub sig_request: u64,
    /// An NDP `hello` beacon.
    pub beacon: u64,
    /// A request to the MSS (item id + piggybacked location).
    pub server_request: u64,
    /// A validation request / validity approval on the server channel.
    pub validation: u64,
    /// Fixed header prepended to any data-bearing message.
    pub header: u64,
    /// One data item (the paper's `DataSize`, default 3 KB).
    pub data_item: u64,
    /// Per-entry size of a piggybacked signature-update position or a
    /// membership identifier.
    pub per_list_entry: u64,
}

impl Default for MessageSizes {
    fn default() -> Self {
        MessageSizes {
            p2p_request: 64,
            p2p_reply: 32,
            p2p_retrieve: 32,
            sig_request: 32,
            beacon: 32,
            server_request: 64,
            validation: 32,
            header: 32,
            data_item: 3_072,
            per_list_entry: 2,
        }
    }
}

impl MessageSizes {
    /// Size of a data-bearing message (header + item).
    pub fn data_message(&self) -> u64 {
        self.header + self.data_item
    }

    /// Size of a broadcast request carrying `entries` piggybacked
    /// signature-update positions.
    pub fn request_with_updates(&self, entries: usize) -> u64 {
        self.p2p_request + self.per_list_entry * entries as u64
    }

    /// Size of a `SigRequest` carrying `members` membership identifiers.
    pub fn sig_request_with_members(&self, members: usize) -> u64 {
        self.sig_request + self.per_list_entry * members as u64
    }
}

/// The shared channels between the mobile hosts and the mobile support
/// station: one uplink, one downlink, each a FIFO facility. The MSS serves
/// requests first-come-first-served with an unbounded queue — exactly the
/// paper's server model — which the downlink facility realises.
#[derive(Debug, Clone)]
pub struct ServerChannel {
    uplink: Facility,
    downlink: Facility,
    uplink_kbps: u64,
    downlink_kbps: u64,
}

impl ServerChannel {
    /// Creates the channel with the given bandwidths in kilobits/second.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is zero.
    pub fn new(uplink_kbps: u64, downlink_kbps: u64) -> Self {
        assert!(
            uplink_kbps > 0 && downlink_kbps > 0,
            "bandwidths must be positive"
        );
        ServerChannel {
            uplink: Facility::new("server-uplink"),
            downlink: Facility::new("server-downlink"),
            uplink_kbps,
            downlink_kbps,
        }
    }

    /// Sends `bytes` up to the MSS at `now`; returns the arrival instant
    /// (uplink queueing + transmission).
    pub fn request_arrival(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.uplink
            .enqueue(now, transmission_time(bytes, self.uplink_kbps))
    }

    /// Sends `bytes` down to a host at `now`; returns the arrival instant
    /// (downlink queueing + transmission).
    pub fn response_arrival(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.downlink
            .enqueue(now, transmission_time(bytes, self.downlink_kbps))
    }

    /// Downlink utilisation over `[0, horizon]`.
    pub fn downlink_utilisation(&self, horizon: SimTime) -> f64 {
        self.downlink.utilisation(horizon)
    }

    /// Mean downlink queueing delay per message, seconds.
    pub fn downlink_queue_delay_secs(&self) -> f64 {
        self.downlink.mean_queue_delay_secs()
    }

    /// Messages served by the downlink.
    pub fn downlink_jobs(&self) -> u64 {
        self.downlink.jobs()
    }

    /// Exports the uplink and downlink facility states, for checkpointing.
    #[allow(clippy::type_complexity)]
    pub fn export_state(&self) -> ((SimTime, u64, u64, u64), (SimTime, u64, u64, u64)) {
        (self.uplink.export_state(), self.downlink.export_state())
    }

    /// Restores facility states previously returned by
    /// [`ServerChannel::export_state`].
    #[allow(clippy::type_complexity)]
    pub fn restore_state(&mut self, state: ((SimTime, u64, u64, u64), (SimTime, u64, u64, u64))) {
        self.uplink.restore_state(state.0);
        self.downlink.restore_state(state.1);
    }
}

/// The P2P channel: one half-duplex radio per host, common bandwidth.
///
/// Each host's transmissions serialise on its own radio; a broadcast is
/// delivered to every in-range host at the sender's completion instant, and
/// multi-hop forwarding adds one transmission time per extra hop. Who is in
/// range is geometry, supplied by the mobility layer — this type owns only
/// the timing.
#[derive(Debug, Clone)]
pub struct P2pChannel {
    radios: Vec<Facility>,
    kbps: u64,
}

impl P2pChannel {
    /// Creates radios for `n` hosts at `kbps` kilobits/second.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `kbps` is zero.
    pub fn new(n: usize, kbps: u64) -> Self {
        assert!(n > 0, "need at least one radio");
        assert!(kbps > 0, "bandwidth must be positive");
        P2pChannel {
            radios: (0..n).map(|_| Facility::new("p2p-radio")).collect(),
            kbps,
        }
    }

    /// Number of radios.
    pub fn len(&self) -> usize {
        self.radios.len()
    }

    /// Whether the channel has no radios (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.radios.is_empty()
    }

    /// Transmits `bytes` from `sender` starting at `now`; returns the
    /// completion (= delivery) instant after the sender's radio queue.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn send(&mut self, sender: usize, now: SimTime, bytes: u64) -> SimTime {
        self.radios[sender].enqueue(now, transmission_time(bytes, self.kbps))
    }

    /// Delivery instant of a broadcast at a receiver `hops` hops away:
    /// the sender-local completion plus one store-and-forward transmission
    /// per additional hop.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is zero.
    pub fn broadcast_delivery(&self, sent_done: SimTime, bytes: u64, hops: u32) -> SimTime {
        assert!(hops > 0, "a receiver is at least one hop away");
        let per_hop = transmission_time(bytes, self.kbps);
        let mut at = sent_done;
        for _ in 1..hops {
            at = at.saturating_add(per_hop);
        }
        at
    }

    /// One transmission time on this channel for `bytes`.
    pub fn tx_time(&self, bytes: u64) -> SimTime {
        transmission_time(bytes, self.kbps)
    }

    /// Total messages sent by `sender`'s radio.
    pub fn sends_of(&self, sender: usize) -> u64 {
        self.radios[sender].jobs()
    }

    /// Exports every radio's facility state, for checkpointing.
    pub fn export_state(&self) -> Vec<(SimTime, u64, u64, u64)> {
        self.radios.iter().map(Facility::export_state).collect()
    }

    /// Restores radio states previously returned by
    /// [`P2pChannel::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the radio count differs.
    pub fn restore_state(&mut self, states: &[(SimTime, u64, u64, u64)]) {
        assert_eq!(
            states.len(),
            self.radios.len(),
            "radio count must match the checkpointed run"
        );
        for (radio, &state) in self.radios.iter_mut().zip(states) {
            radio.restore_state(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_downlink_queues_under_load() {
        let mut ch = ServerChannel::new(200, 2_000);
        let now = SimTime::ZERO;
        // 3 KB data message at 2 Mb/s ≈ 12.4 ms each.
        let sizes = MessageSizes::default();
        let a = ch.response_arrival(now, sizes.data_message());
        let b = ch.response_arrival(now, sizes.data_message());
        assert!(
            b.saturating_sub(a) >= a,
            "second message queued behind the first"
        );
        assert_eq!(ch.downlink_jobs(), 2);
        assert!(ch.downlink_queue_delay_secs() > 0.0);
    }

    #[test]
    fn uplink_and_downlink_are_independent() {
        let mut ch = ServerChannel::new(100, 10_000);
        let up = ch.request_arrival(SimTime::ZERO, 1_000);
        let down = ch.response_arrival(SimTime::ZERO, 1_000);
        // Same bytes, 100x slower uplink → much later arrival.
        assert!(up > down);
    }

    #[test]
    fn p2p_sends_serialise_per_radio() {
        let mut p2p = P2pChannel::new(3, 2_000);
        let t1 = p2p.send(0, SimTime::ZERO, 3_072);
        let t2 = p2p.send(0, SimTime::ZERO, 3_072);
        let t3 = p2p.send(1, SimTime::ZERO, 3_072);
        assert_eq!(t2.as_micros(), 2 * t1.as_micros(), "same radio serialises");
        assert_eq!(t3, t1, "different radio is unaffected");
        assert_eq!(p2p.sends_of(0), 2);
    }

    #[test]
    fn multi_hop_adds_per_hop_latency() {
        let p2p = P2pChannel::new(2, 2_000);
        let done = SimTime::from_millis(10);
        let one = p2p.broadcast_delivery(done, 64, 1);
        let two = p2p.broadcast_delivery(done, 64, 2);
        assert_eq!(one, done);
        assert_eq!(two.saturating_sub(one), p2p.tx_time(64));
    }

    #[test]
    fn message_size_helpers() {
        let s = MessageSizes::default();
        assert_eq!(s.data_message(), 32 + 3_072);
        assert_eq!(s.request_with_updates(10), 64 + 20);
        assert_eq!(s.sig_request_with_members(4), 32 + 8);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hop_delivery_rejected() {
        let p2p = P2pChannel::new(1, 2_000);
        p2p.broadcast_delivery(SimTime::ZERO, 64, 0);
    }
}
