//! The neighbour discovery protocol (NDP) of Section III.
//!
//! "NDP is a simple protocol in which the neighbor connectivity is
//! maintained through a periodic beacon of hello message ... If an MH has
//! not received a beacon message from a known peer for some beacon cycles,
//! it considers that there is a link failure with that peer."
//!
//! [`Ndp`] maintains the pairwise link table those beacons imply: a link
//! comes **up** the first round both hosts hear each other and goes
//! **down** after [`NdpConfig::miss_threshold`] consecutive missed rounds.
//! The table is symmetric. The simulator can answer neighbourhood queries
//! from this (possibly stale) table instead of exact geometry, modelling
//! the protocol's detection lag.

/// NDP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdpConfig {
    /// Beacon rounds a known link may miss before it is declared failed.
    pub miss_threshold: u32,
}

impl Default for NdpConfig {
    fn default() -> Self {
        NdpConfig { miss_threshold: 3 }
    }
}

impl NdpConfig {
    /// This configuration with `rounds` extra beacon rounds of staleness
    /// grace before a link is declared failed.
    ///
    /// Under injected beacon loss a healthy link misses rounds at the
    /// loss rate; widening the threshold keeps the link table from
    /// flapping on lost frames while preserving detection of genuine
    /// departures (which miss every subsequent round).
    pub fn with_grace(self, rounds: u32) -> Self {
        NdpConfig {
            miss_threshold: self.miss_threshold + rounds,
        }
    }
}

/// A link-state change produced by a beacon round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// Hosts `.0` and `.1` discovered each other.
    Up(usize, usize),
    /// The link between hosts `.0` and `.1` failed (beacons missed).
    Down(usize, usize),
}

use std::collections::BTreeSet;

/// The beacon-maintained pairwise link table.
///
/// # Examples
///
/// ```
/// use grococa_net::{LinkEvent, Ndp, NdpConfig};
///
/// let mut ndp = Ndp::new(3, NdpConfig { miss_threshold: 2 });
/// let active = vec![true; 3];
/// // Hosts 0 and 1 in range, 2 isolated:
/// let events = ndp.beacon_round(|a, b| (a, b) == (0, 1), &active);
/// assert_eq!(events, vec![LinkEvent::Up(0, 1)]);
/// assert!(ndp.is_linked(0, 1));
/// // They separate; the link survives one missed round...
/// assert!(ndp.beacon_round(|_, _| false, &active).is_empty());
/// // ...and fails on the second.
/// assert_eq!(
///     ndp.beacon_round(|_, _| false, &active),
///     vec![LinkEvent::Down(0, 1)]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Ndp {
    n: usize,
    config: NdpConfig,
    linked: Vec<bool>,
    missed: Vec<u32>,
    /// The pairs `(a, b)` with `a < b` currently linked — the sparse
    /// mirror of `linked`, letting a beacon round age links in O(links)
    /// instead of scanning all n(n−1)/2 pairs.
    up: BTreeSet<(u32, u32)>,
}

impl Ndp {
    /// Creates an empty link table for `n` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the miss threshold is zero.
    pub fn new(n: usize, config: NdpConfig) -> Self {
        assert!(n > 0, "need at least one host");
        assert!(config.miss_threshold > 0, "miss threshold must be positive");
        let pairs = n * (n - 1) / 2;
        Ndp {
            n,
            config,
            linked: vec![false; pairs],
            missed: vec![0; pairs],
            up: BTreeSet::new(),
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn pair_index(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b < self.n);
        // Upper-triangle row-major index.
        a * self.n - a * (a + 1) / 2 + (b - a - 1)
    }

    /// Runs one beacon round: `in_range(a, b)` (called with `a < b`) says
    /// whether the pair currently hears each other; `active` masks
    /// disconnected hosts (their beacons stop, so their links age out like
    /// any other). Returns the link-state changes, `Up`s before `Down`s in
    /// pair order.
    ///
    /// # Panics
    ///
    /// Panics if `active` is shorter than the host count.
    pub fn beacon_round(
        &mut self,
        in_range: impl Fn(usize, usize) -> bool,
        active: &[bool],
    ) -> Vec<LinkEvent> {
        assert!(active.len() >= self.n, "active mask too short");
        let mut events = Vec::new();
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                let idx = self.pair_index(a, b);
                let heard = active[a] && active[b] && in_range(a, b);
                if heard {
                    self.missed[idx] = 0;
                    if !self.linked[idx] {
                        self.linked[idx] = true;
                        self.up.insert((a as u32, b as u32));
                        events.push(LinkEvent::Up(a, b));
                    }
                } else if self.linked[idx] {
                    self.missed[idx] += 1;
                    if self.missed[idx] >= self.config.miss_threshold {
                        self.linked[idx] = false;
                        self.missed[idx] = 0;
                        self.up.remove(&(a as u32, b as u32));
                        events.push(LinkEvent::Down(a, b));
                    }
                }
            }
        }
        events
    }

    /// [`Ndp::beacon_round`] fed by precomputed adjacency instead of an
    /// all-pairs oracle: row `a` is `neighbors[starts[a]..starts[a + 1]]`,
    /// the **ascending** indices of the active hosts host `a` currently
    /// hears (e.g. from a spatial-grid query). Rows must be symmetric.
    ///
    /// Heard pairs are walked straight off the rows — O(Σ row lengths) —
    /// and unheard links age via the sparse up-link set — O(links·log k) —
    /// so a round never touches all n(n−1)/2 pairs. The returned events
    /// (and the resulting table state) are exactly those of the dense
    /// [`Ndp::beacon_round`] over the same reachability relation.
    ///
    /// # Panics
    ///
    /// Panics if `starts` does not describe one row per host or `active`
    /// is shorter than the host count.
    pub fn beacon_round_adjacency(
        &mut self,
        starts: &[usize],
        neighbors: &[u32],
        active: &[bool],
    ) -> Vec<LinkEvent> {
        assert_eq!(starts.len(), self.n + 1, "need one adjacency row per host");
        assert!(active.len() >= self.n, "active mask too short");
        let row = |a: usize| &neighbors[starts[a]..starts[a + 1]];
        // Heard pairs: reset the miss counter, collect fresh links. `a`
        // ascending and rows ascending make `ups` pair-ordered.
        let mut ups: Vec<(u32, u32)> = Vec::new();
        for a in 0..self.n {
            if !active[a] {
                continue;
            }
            for &b in row(a) {
                let bu = b as usize;
                if bu <= a || !active[bu] {
                    continue;
                }
                let idx = self.pair_index(a, bu);
                self.missed[idx] = 0;
                if !self.linked[idx] {
                    ups.push((a as u32, b));
                }
            }
        }
        // Established links not heard this round age toward failure.
        let mut downs: Vec<(u32, u32)> = Vec::new();
        for &(a, b) in &self.up {
            let (au, bu) = (a as usize, b as usize);
            let heard = active[au] && active[bu] && row(au).binary_search(&b).is_ok();
            if heard {
                continue;
            }
            let idx = self.pair_index(au, bu);
            self.missed[idx] += 1;
            if self.missed[idx] >= self.config.miss_threshold {
                self.missed[idx] = 0;
                downs.push((a, b));
            }
        }
        for &(a, b) in &ups {
            let idx = self.pair_index(a as usize, b as usize);
            self.linked[idx] = true;
            self.up.insert((a, b));
        }
        for &(a, b) in &downs {
            let idx = self.pair_index(a as usize, b as usize);
            self.linked[idx] = false;
            self.up.remove(&(a, b));
        }
        // Merge the two pair-ordered streams so events come out in the
        // dense round's pair order.
        let mut events = Vec::with_capacity(ups.len() + downs.len());
        let (mut i, mut j) = (0, 0);
        while i < ups.len() || j < downs.len() {
            let take_up = j >= downs.len() || (i < ups.len() && ups[i] < downs[j]);
            if take_up {
                let (a, b) = ups[i];
                events.push(LinkEvent::Up(a as usize, b as usize));
                i += 1;
            } else {
                let (a, b) = downs[j];
                events.push(LinkEvent::Down(a as usize, b as usize));
                j += 1;
            }
        }
        events
    }

    /// Whether the table currently links `a` and `b` (order-insensitive;
    /// a host is never linked to itself).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn is_linked(&self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "host index out of range");
        if a == b {
            return false;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.linked[self.pair_index(lo, hi)]
    }

    /// The current neighbours of `i` per the link table.
    pub fn neighbors_of(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.is_linked(i, j)).collect()
    }

    /// Hosts reachable from `src` within `hops` hops of the link-table
    /// graph, with the hop count at which each is first reached
    /// (breadth-first; `src` excluded). The NDP analogue of the geometric
    /// query in `grococa-mobility`.
    pub fn reachable_within_hops(&self, src: usize, hops: u32) -> Vec<(usize, u32)> {
        let mut dist = vec![u32::MAX; self.n];
        dist[src] = 0;
        let mut frontier = vec![src];
        let mut out = Vec::new();
        for hop in 1..=hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for (v, d) in dist.iter_mut().enumerate() {
                    if *d == u32::MAX && self.is_linked(u, v) {
                        *d = hop;
                        next.push(v);
                        out.push((v, hop));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }

    /// Total links currently up.
    pub fn link_count(&self) -> usize {
        self.linked.iter().filter(|&&l| l).count()
    }

    /// Forgets everything (e.g. after a simulation reset).
    pub fn clear(&mut self) {
        self.linked.fill(false);
        self.missed.fill(0);
        self.up.clear();
    }

    /// Exports the link table for checkpointing: the per-pair
    /// `(linked, missed)` vectors. The sparse up-link set is fully
    /// derivable from `linked` and is not exported.
    pub fn export_state(&self) -> (&[bool], &[u32]) {
        (&self.linked, &self.missed)
    }

    /// Restores a link table previously read back via
    /// [`Ndp::export_state`], rebuilding the sparse up-link mirror.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match this table's host count.
    pub fn restore_state(&mut self, linked: &[bool], missed: &[u32]) {
        let pairs = self.n * (self.n - 1) / 2;
        assert_eq!(linked.len(), pairs, "linked vector length mismatch");
        assert_eq!(missed.len(), pairs, "missed vector length mismatch");
        self.linked.copy_from_slice(linked);
        self.missed.copy_from_slice(missed);
        self.up.clear();
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if self.linked[self.pair_index(a, b)] {
                    self.up.insert((a as u32, b as u32));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_active(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn grace_widens_the_miss_threshold() {
        let base = NdpConfig { miss_threshold: 2 };
        assert_eq!(base.with_grace(0), base);
        assert_eq!(base.with_grace(3).miss_threshold, 5);
        // A link under the widened threshold survives the extra rounds.
        let mut ndp = Ndp::new(2, base.with_grace(1));
        let active = all_active(2);
        assert_eq!(
            ndp.beacon_round(|a, b| (a, b) == (0, 1), &active),
            vec![LinkEvent::Up(0, 1)]
        );
        assert!(ndp.beacon_round(|_, _| false, &active).is_empty());
        assert!(ndp.beacon_round(|_, _| false, &active).is_empty());
        assert_eq!(
            ndp.beacon_round(|_, _| false, &active),
            vec![LinkEvent::Down(0, 1)]
        );
    }

    #[test]
    fn links_come_up_immediately() {
        let mut ndp = Ndp::new(4, NdpConfig::default());
        let ev = ndp.beacon_round(|a, b| a + 1 == b, &all_active(4));
        assert_eq!(
            ev,
            vec![
                LinkEvent::Up(0, 1),
                LinkEvent::Up(1, 2),
                LinkEvent::Up(2, 3)
            ]
        );
        assert_eq!(ndp.link_count(), 3);
        assert!(ndp.is_linked(1, 0), "links are symmetric");
        assert!(!ndp.is_linked(0, 2));
        assert!(!ndp.is_linked(2, 2), "no self links");
    }

    #[test]
    fn failure_needs_threshold_misses() {
        let mut ndp = Ndp::new(2, NdpConfig { miss_threshold: 3 });
        ndp.beacon_round(|_, _| true, &all_active(2));
        for round in 0..2 {
            let ev = ndp.beacon_round(|_, _| false, &all_active(2));
            assert!(ev.is_empty(), "link died too early at round {round}");
            assert!(ndp.is_linked(0, 1));
        }
        let ev = ndp.beacon_round(|_, _| false, &all_active(2));
        assert_eq!(ev, vec![LinkEvent::Down(0, 1)]);
        assert_eq!(ndp.link_count(), 0);
    }

    #[test]
    fn hearing_again_resets_the_miss_counter() {
        let mut ndp = Ndp::new(2, NdpConfig { miss_threshold: 2 });
        ndp.beacon_round(|_, _| true, &all_active(2));
        ndp.beacon_round(|_, _| false, &all_active(2)); // one miss
        ndp.beacon_round(|_, _| true, &all_active(2)); // heard again
        let ev = ndp.beacon_round(|_, _| false, &all_active(2)); // one miss again
        assert!(ev.is_empty(), "counter must reset on a heard beacon");
        assert!(ndp.is_linked(0, 1));
    }

    #[test]
    fn inactive_hosts_stop_beaconing() {
        let mut ndp = Ndp::new(2, NdpConfig { miss_threshold: 1 });
        ndp.beacon_round(|_, _| true, &all_active(2));
        let ev = ndp.beacon_round(|_, _| true, &[true, false]);
        assert_eq!(ev, vec![LinkEvent::Down(0, 1)], "silent host ages out");
    }

    #[test]
    fn bfs_over_link_table() {
        let mut ndp = Ndp::new(5, NdpConfig::default());
        // A chain 0-1-2-3 with 4 isolated.
        ndp.beacon_round(|a, b| b == a + 1 && b <= 3, &all_active(5));
        let mut reach = ndp.reachable_within_hops(0, 2);
        reach.sort_unstable();
        assert_eq!(reach, vec![(1, 1), (2, 2)]);
        assert_eq!(ndp.reachable_within_hops(4, 3), vec![]);
    }

    #[test]
    fn neighbors_of_lists_current_links() {
        let mut ndp = Ndp::new(3, NdpConfig::default());
        ndp.beacon_round(|a, b| (a, b) != (0, 2), &all_active(3));
        assert_eq!(ndp.neighbors_of(1), vec![0, 2]);
        assert_eq!(ndp.neighbors_of(0), vec![1]);
    }

    #[test]
    fn clear_resets_the_table() {
        let mut ndp = Ndp::new(3, NdpConfig::default());
        ndp.beacon_round(|_, _| true, &all_active(3));
        ndp.clear();
        assert_eq!(ndp.link_count(), 0);
    }

    #[test]
    fn adjacency_round_matches_dense_round() {
        let n = 12;
        let mut dense = Ndp::new(n, NdpConfig { miss_threshold: 2 });
        let mut sparse = dense.clone();
        // Deterministic pseudo-random reachability and activity per round.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let bits: Vec<u64> = (0..n).map(|_| next()).collect();
            let active: Vec<bool> = (0..n).map(|i| !bits[i].is_multiple_of(5)).collect();
            let in_range = |a: usize, b: usize| (bits[a] ^ bits[b]).is_multiple_of(3);
            // Symmetric ascending adjacency of the same relation, already
            // filtered by `active` as a grid query would be.
            let mut starts = vec![0usize];
            let mut nbrs: Vec<u32> = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    if a != b && active[a] && active[b] && in_range(lo, hi) {
                        nbrs.push(b as u32);
                    }
                }
                starts.push(nbrs.len());
            }
            let ev_dense = dense.beacon_round(in_range, &active);
            let ev_sparse = sparse.beacon_round_adjacency(&starts, &nbrs, &active);
            assert_eq!(ev_dense, ev_sparse, "round {round}");
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(dense.is_linked(a, b), sparse.is_linked(a, b));
                }
            }
        }
    }

    #[test]
    fn pair_index_covers_triangle_uniquely() {
        let ndp = Ndp::new(7, NdpConfig::default());
        let mut seen = grococa_sim::DetSet::new();
        for a in 0..7 {
            for b in (a + 1)..7 {
                assert!(seen.insert(ndp.pair_index(a, b)), "collision at ({a},{b})");
            }
        }
        assert_eq!(seen.len(), 21);
        assert!(seen.iter().all(|&i| i < 21));
    }
}
