//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so the
//! subset of proptest the test suite uses is vendored here:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`];
//! * range, tuple, [`any`], `prop_map` and [`collection`] strategies.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs via the assertion message), and cases are generated from
//! a deterministic per-test seed so failures reproduce exactly. The case
//! count is 64 by default and can be raised with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation.

    /// Number of generated cases per property (env `PROPTEST_CASES`,
    /// default 64).
    pub fn iterations() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// The generator behind every strategy: SplitMix64 seeded from the
    /// test's name and the case index, so every case replays exactly.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, folded with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// An unbiased integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty sampling span");
            let zone = span.wrapping_neg() % span;
            loop {
                let m = (self.next_u64() as u128) * (span as u128);
                if (m as u64) >= zone {
                    return (m >> 64) as u64;
                }
            }
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its adapters.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = Rc::new(self);
            BoxedStrategy {
                sample: Rc::new(move |rng| inner.sample(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        sample: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// An equal-weight choice between strategies (see [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    loop {
                        let v = self.start
                            + (self.end - self.start) * rng.unit_f64() as $t;
                        if v < self.end {
                            return v;
                        }
                    }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (end - start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly log-uniform magnitude — pathological floats
            // (NaN, infinities) are not produced.
            let mag = (rng.unit_f64() * 600.0) - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mag.exp2() * rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            // Duplicates shrink the set; retry a bounded number of times so
            // narrow element domains still reach the minimum size when they
            // can.
            let mut attempts = 0;
            while out.len() < target && attempts < 16 * (target + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A strategy producing `HashSet`s of `element` with a target size drawn
    /// from `size` (possibly smaller when the element domain is narrow).
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::iterations();
                let __name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__name, __case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// An equal-weight choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A(u32),
        B,
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -5i32..5, z in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&z));
        }

        #[test]
        fn tuples_and_maps(pair in (0u64..4, 1usize..3).prop_map(|(a, b)| a as usize * b)) {
            prop_assert!(pair <= 6);
        }

        #[test]
        fn oneof_covers_arms(k in prop_oneof![
            (0u32..5).prop_map(Kind::A),
            (0u32..1).prop_map(|_| Kind::B),
        ]) {
            match k {
                Kind::A(v) => prop_assert!(v < 5),
                Kind::B => {}
            }
        }

        #[test]
        fn collections_sized(
            v in crate::collection::vec(0u8..10, 2..6),
            s in crate::collection::hash_set(0u64..1_000, 1..8),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn any_is_finite(x in any::<f64>(), b in any::<bool>(), n in any::<u64>()) {
            prop_assert!(x.is_finite());
            let _ = (b, n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::for_case("t", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
