//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` items the code base uses are vendored here:
//!
//! * [`rngs::SmallRng`] — the same algorithm family real `rand 0.8` uses on
//!   64-bit targets (xoshiro256++), seeded from a `u64` through SplitMix64;
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` over the primitive types the
//!   simulator draws;
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`.
//!
//! Determinism is the only contract: a given seed always produces the same
//! stream on every platform. Bit-compatibility with upstream `rand` is not
//! guaranteed (the uniform-range rejection constants differ), which is fine
//! for this workspace — every consumer treats the stream as opaque.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a uniform value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` by widening multiply with
/// rejection.
fn uniform_u64_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject the final partial block so every residue is equally likely.
    let zone = span.wrapping_neg() % span; // = 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                loop {
                    let unit = <$t as Standard>::sample_standard(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    // Guard against rounding up to the exclusive bound on
                    // extreme ranges.
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing random-draw interface (the `rand::Rng` subset used by
/// this workspace).
pub trait Rng: RngCore {
    /// A value drawn uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it through SplitMix64
    /// exactly like upstream `rand`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the same
    /// algorithm real `rand 0.8` selects for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words previously returned by
        /// [`SmallRng::state`]. Round-trips exactly: the restored generator
        /// continues the original stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/64 equal");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(0..17u64);
            assert!(x < 17);
            let y = rng.gen_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&y));
            let z: usize = rng.gen_range(5..6usize);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "unit mean {mean} far from 0.5");
    }

    #[test]
    fn full_range_inclusive_is_supported() {
        let mut rng = SmallRng::seed_from_u64(11);
        // Must not panic or loop: span wraps to zero internally.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    use super::rngs::SmallRng as S2;

    #[test]
    fn from_seed_rejects_zero_state() {
        let a = S2::from_seed([0; 32]);
        let mut b = a.clone();
        // A working generator: successive words differ.
        assert_ne!(b.next_u64(), b.next_u64());
    }

    use super::RngCore;

    #[test]
    fn next_u32_draws_upper_bits() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
