//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace cannot reach crates.io, so the
//! small API surface the micro-benchmarks use is vendored here: `Criterion`,
//! `Bencher::iter`, [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The harness is deliberately simple — a calibration pass sizes the batch,
//! then a fixed number of timed batches report the median nanoseconds per
//! iteration. It has none of criterion's statistics, but produces stable,
//! comparable numbers for the relative regressions these benches guard.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(250);
/// Timed batches per benchmark (median reported).
const BATCHES: usize = 11;

/// The benchmark driver handed to every registered function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `id`, printing the median ns/iter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        match b.ns_per_iter {
            Some(ns) => println!("bench {id:<44} {:>12.1} ns/iter", ns),
            None => println!("bench {id:<44} (no iterations)"),
        }
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`, storing the median nanoseconds per call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibration: find a batch size that takes a measurable slice of
        // the budget.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = t0.elapsed();
            if took >= MEASURE_BUDGET / (BATCHES as u32 * 4) || batch >= 1 << 24 {
                break;
            }
            batch *= 8;
        }
        let mut samples: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        // The group fn is only reached through `criterion_main!` in a
        // bench target; in other build contexts it is unreachable pub.
        #[allow(unreachable_pub, dead_code)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_sample() {
        let mut b = Bencher::default();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter.is_some());
        assert!(b.ns_per_iter.unwrap() >= 0.0);
    }

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| black_box(1u32) + 1));
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn group_runs() {
        smoke();
    }
}
